//! Compressed hybrid posting index — roaring-style containers per
//! (attribute, value) pair.
//!
//! The flat [`InvertedIndex`](crate::index::InvertedIndex) stores every
//! posting as a sorted `Vec<u32>`, which costs 4 bytes per posting no
//! matter how dense the value is. At Yelp scale the posting mass
//! concentrates in a few very dense values (every reviewer has *some*
//! city; categorical attributes are heavy-tailed), so this module keeps
//! one [`Container`] per value in whichever of three encodings is
//! smallest **in bytes**:
//!
//! * [`Container::Array`] — sorted unique `Vec<u32>`, 4·n bytes. Wins for
//!   sparse values.
//! * [`Container::Bitmap`] — packed `u64` words over the whole row
//!   domain, 8·⌈rows/64⌉ bytes. Wins once a value covers more than
//!   ~1/16 of the table.
//! * [`Container::Runs`] — `(start, len)` run list, 8·r bytes. Wins for
//!   clustered values (sorted ingest order groups cities together).
//!
//! Unlike roaring proper, containers span the whole row domain instead of
//! 16-bit chunks: entity tables top out in the low millions of rows, so
//! one bitmap is at most a few hundred KiB and chunk bookkeeping would
//! cost more than it saves. The promotion rule is pure byte minimization
//! and therefore deterministic — snapshots can carry containers verbatim
//! and a rebuild reproduces them bit-for-bit.
//!
//! [`CompressedIndex::intersect`] evaluates a conjunction over the
//! containers with the `stats::kernels` set kernels (word-wise AND,
//! array∩bitmap probe, sorted-list gallop), visiting predicates in
//! ascending exact-cardinality order so the working set shrinks as fast
//! as possible. The result is a [`MemberSet`] that downstream code turns
//! into a [`BitSet`] or keeps as words for the record-probe kernels.

use crate::bitset::BitSet;
use crate::error::StoreError;
use crate::index::InvertedIndex;
use crate::schema::AttrId;
use crate::value::ValueId;

use subdex_stats::kernels;

/// One value's posting set in its byte-minimal encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Container {
    /// Sorted unique row ids — the sparse encoding.
    Array(Vec<u32>),
    /// Packed bitmap over the whole row domain — the dense encoding.
    /// `card` caches the population so cardinality reads are O(1).
    Bitmap { words: Vec<u64>, card: u32 },
    /// Sorted disjoint `(start, len)` runs — the clustered encoding.
    Runs { runs: Vec<(u32, u32)>, card: u32 },
}

impl Container {
    /// Encodes sorted unique `ids` over a `rows`-row domain, picking the
    /// smallest of the three encodings (runs strictly smallest → runs;
    /// else array unless the bitmap is smaller). Deterministic, so
    /// snapshot round-trips and rebuilds agree bit-for-bit.
    pub fn build(ids: &[u32], rows: usize) -> Self {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids sorted unique");
        let card = ids.len() as u32;
        let arr_bytes = 4 * ids.len();
        let bmp_bytes = 8 * rows.div_ceil(64);
        let mut nruns = 0usize;
        let mut prev = u32::MAX;
        for &id in ids {
            nruns += usize::from(prev == u32::MAX || id != prev + 1);
            prev = id;
        }
        let runs_bytes = 8 * nruns;
        if runs_bytes < arr_bytes && runs_bytes < bmp_bytes {
            let mut runs = Vec::with_capacity(nruns);
            for &id in ids {
                match runs.last_mut() {
                    Some((start, len)) if *start + *len == id => *len += 1,
                    _ => runs.push((id, 1)),
                }
            }
            Container::Runs { runs, card }
        } else if arr_bytes <= bmp_bytes {
            Container::Array(ids.to_vec())
        } else {
            let mut words = vec![0u64; rows.div_ceil(64)];
            for &id in ids {
                words[id as usize >> 6] |= 1u64 << (id & 63);
            }
            Container::Bitmap { words, card }
        }
    }

    /// Exact number of rows in the container.
    #[inline]
    pub fn card(&self) -> usize {
        match self {
            Container::Array(ids) => ids.len(),
            Container::Bitmap { card, .. } | Container::Runs { card, .. } => *card as usize,
        }
    }

    /// Resident payload bytes of the encoding (capacity is exact: builders
    /// size with `with_capacity`/`to_vec`).
    pub fn bytes(&self) -> usize {
        match self {
            Container::Array(ids) => 4 * ids.capacity(),
            Container::Bitmap { words, .. } => 8 * words.capacity(),
            Container::Runs { runs, .. } => 8 * runs.capacity(),
        }
    }

    /// Membership test.
    pub fn contains(&self, id: u32) -> bool {
        match self {
            Container::Array(ids) => ids.binary_search(&id).is_ok(),
            Container::Bitmap { words, .. } => {
                let w = id as usize >> 6;
                w < words.len() && (words[w] >> (id & 63)) & 1 == 1
            }
            Container::Runs { runs, .. } => {
                let i = runs.partition_point(|&(start, _)| start <= id);
                i > 0 && {
                    let (start, len) = runs[i - 1];
                    id - start < len
                }
            }
        }
    }

    /// Sets the container's rows as bits into pre-zeroed-or-accumulating
    /// `words` (must cover the row domain).
    pub fn write_words(&self, words: &mut [u64]) {
        match self {
            Container::Array(ids) => {
                for &id in ids {
                    words[id as usize >> 6] |= 1u64 << (id & 63);
                }
            }
            Container::Bitmap { words: src, .. } => {
                for (dst, &w) in words.iter_mut().zip(src) {
                    *dst |= w;
                }
            }
            Container::Runs { runs, .. } => {
                for &(start, len) in runs {
                    for id in start..start + len {
                        words[id as usize >> 6] |= 1u64 << (id & 63);
                    }
                }
            }
        }
    }

    /// Appends the container's rows to `out` in ascending order.
    pub fn decode_into(&self, path: kernels::KernelPath, out: &mut Vec<u32>) {
        match self {
            Container::Array(ids) => out.extend_from_slice(ids),
            Container::Bitmap { words, .. } => kernels::decode_words(path, words, out),
            Container::Runs { runs, .. } => {
                for &(start, len) in runs {
                    out.extend(start..start + len);
                }
            }
        }
    }

    /// Encoding-class name for stats lines.
    pub fn class(&self) -> &'static str {
        match self {
            Container::Array(_) => "array",
            Container::Bitmap { .. } => "bitmap",
            Container::Runs { .. } => "runs",
        }
    }
}

/// The members of a conjunctive selection mid-intersection: starts at
/// [`MemberSet::All`], narrows through container intersections, and ends
/// as either decoded ids or bitmap words depending on which encodings
/// were met along the way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemberSet {
    /// Every row matches (no predicates yet).
    All,
    /// Sorted unique matching ids.
    Ids(Vec<u32>),
    /// Packed bitmap words over the whole row domain.
    Words(Vec<u64>),
}

impl MemberSet {
    /// Whether the set is certainly empty.
    pub fn is_empty(&self) -> bool {
        match self {
            MemberSet::All => false,
            MemberSet::Ids(ids) => ids.is_empty(),
            MemberSet::Words(words) => words.iter().all(|&w| w == 0),
        }
    }

    /// Exact member count over a `rows`-row domain.
    pub fn len(&self, rows: usize) -> usize {
        match self {
            MemberSet::All => rows,
            MemberSet::Ids(ids) => ids.len(),
            MemberSet::Words(words) => kernels::popcount_words(kernels::active(), words) as usize,
        }
    }

    /// Converts into a [`BitSet`] over `rows` ids.
    pub fn into_bitset(self, rows: usize) -> BitSet {
        match self {
            MemberSet::All => BitSet::full(rows),
            MemberSet::Ids(ids) => BitSet::from_ids(rows, &ids),
            MemberSet::Words(words) => BitSet::from_words(words, rows),
        }
    }

    /// Converts into bitmap words covering `rows` ids — the shape the
    /// record-probe kernels (`kernels::filter_rows`) consume. `None`
    /// means "all rows" (no predicate on this side), which the probe
    /// kernels treat as always-pass.
    pub fn into_words(self, rows: usize) -> Option<Vec<u64>> {
        match self {
            MemberSet::All => None,
            MemberSet::Ids(ids) => {
                let mut words = vec![0u64; rows.div_ceil(64)];
                for &id in &ids {
                    words[id as usize >> 6] |= 1u64 << (id & 63);
                }
                Some(words)
            }
            MemberSet::Words(words) => Some(words),
        }
    }
}

/// Per-class container census and byte footprint of one compressed index.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContainerStats {
    /// Number of values encoded as sorted arrays.
    pub arrays: usize,
    /// Number of values encoded as packed bitmaps.
    pub bitmaps: usize,
    /// Number of values encoded as run lists.
    pub runs: usize,
    /// Resident payload bytes across all containers.
    pub resident_bytes: usize,
    /// What flat `Vec<u32>` posting lists would cost for the same
    /// postings (4 bytes × total cardinality) — the compression baseline.
    pub flat_bytes: usize,
}

impl ContainerStats {
    /// Element-wise sum (reviewer side + item side).
    pub fn merge(&self, other: &ContainerStats) -> ContainerStats {
        ContainerStats {
            arrays: self.arrays + other.arrays,
            bitmaps: self.bitmaps + other.bitmaps,
            runs: self.runs + other.runs,
            resident_bytes: self.resident_bytes + other.resident_bytes,
            flat_bytes: self.flat_bytes + other.flat_bytes,
        }
    }
}

/// Compressed index of one entity table: `containers[attr][value]`.
#[derive(Debug, Clone)]
pub struct CompressedIndex {
    containers: Vec<Vec<Container>>,
    rows: usize,
}

impl CompressedIndex {
    /// Compresses a flat inverted index (postings must be sorted unique,
    /// which `InvertedIndex::build` guarantees).
    pub fn from_inverted(index: &InvertedIndex) -> Self {
        let rows = index.rows();
        let containers = index
            .posting_lists()
            .iter()
            .map(|lists| {
                lists
                    .iter()
                    .map(|ids| Container::build(ids, rows))
                    .collect()
            })
            .collect();
        Self { containers, rows }
    }

    /// Reassembles an index from decoded containers (the snapshot-load
    /// path). Validates every container so a damaged file cannot smuggle
    /// dangling rows, unsorted arrays, or lying cardinality caches into
    /// selections:
    /// * arrays strictly ascending with all ids `< rows`;
    /// * bitmaps exactly ⌈rows/64⌉ words with a clear tail and `card`
    ///   equal to the popcount;
    /// * runs strictly ascending, disjoint, non-empty, ending `≤ rows`,
    ///   with `card` equal to the summed lengths.
    pub fn from_containers(
        containers: Vec<Vec<Container>>,
        rows: usize,
    ) -> Result<Self, StoreError> {
        for (attr, values) in containers.iter().enumerate() {
            for (value, c) in values.iter().enumerate() {
                let fail = |what: &str| {
                    Err(StoreError::invalid(format!(
                        "container attr {attr} value {value}: {what}"
                    )))
                };
                match c {
                    Container::Array(ids) => {
                        if ids.windows(2).any(|w| w[0] >= w[1]) {
                            return fail("array not strictly ascending");
                        }
                        if ids.last().is_some_and(|&r| r as usize >= rows) {
                            return fail("array row past table end");
                        }
                    }
                    Container::Bitmap { words, card } => {
                        if words.len() != rows.div_ceil(64) {
                            return fail("bitmap word count mismatch");
                        }
                        let rem = rows % 64;
                        if rem != 0 && words.last().is_some_and(|&w| w >> rem != 0) {
                            return fail("bitmap tail bits past table end");
                        }
                        let pop = kernels::popcount_words(kernels::KernelPath::Scalar, words);
                        if u64::from(*card) != pop {
                            return fail("bitmap cardinality cache wrong");
                        }
                    }
                    Container::Runs { runs, card } => {
                        let mut sum = 0u64;
                        let mut prev_end = 0u64;
                        for (i, &(start, len)) in runs.iter().enumerate() {
                            if len == 0 {
                                return fail("empty run");
                            }
                            let start = u64::from(start);
                            let end = start + u64::from(len);
                            if i > 0 && start <= prev_end {
                                return fail("runs not sorted disjoint");
                            }
                            if end > rows as u64 {
                                return fail("run past table end");
                            }
                            prev_end = end;
                            sum += u64::from(len);
                        }
                        if u64::from(*card) != sum {
                            return fail("run cardinality cache wrong");
                        }
                    }
                }
            }
        }
        Ok(Self { containers, rows })
    }

    /// Number of rows in the indexed table.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The raw containers, `[attr][value]`. Exposed for serialization.
    pub fn containers(&self) -> &[Vec<Container>] {
        &self.containers
    }

    /// Number of values indexed for `attr` (dictionary length at build
    /// time) — the snapshot verifier's shape check.
    pub fn value_count(&self, attr: AttrId) -> usize {
        self.containers.get(attr.index()).map_or(0, Vec::len)
    }

    /// The container for a predicate, if the value is in range.
    pub fn container(&self, attr: AttrId, value: ValueId) -> Option<&Container> {
        self.containers.get(attr.index())?.get(value.index())
    }

    /// Exact cardinality of a predicate (0 for out-of-range values — a
    /// predicate on an unseen value selects nothing).
    #[inline]
    pub fn cardinality(&self, attr: AttrId, value: ValueId) -> usize {
        self.container(attr, value).map_or(0, Container::card)
    }

    /// Selectivity of a predicate: fraction of rows matched.
    pub fn selectivity(&self, attr: AttrId, value: ValueId) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        self.cardinality(attr, value) as f64 / self.rows as f64
    }

    /// Per-class census and byte footprint.
    pub fn stats(&self) -> ContainerStats {
        let mut s = ContainerStats::default();
        for values in &self.containers {
            for c in values {
                match c {
                    Container::Array(_) => s.arrays += 1,
                    Container::Bitmap { .. } => s.bitmaps += 1,
                    Container::Runs { .. } => s.runs += 1,
                }
                s.resident_bytes += c.bytes();
                s.flat_bytes += 4 * c.card();
            }
        }
        s
    }

    /// Intersects the containers of a conjunction of `(attr, value)`
    /// predicates. Predicates are visited in ascending exact-cardinality
    /// order (stable on ties, so the result id-set — though not the work
    /// done — is order-independent), short-circuiting to empty the moment
    /// the working set drains. No predicates ⇒ [`MemberSet::All`].
    pub fn intersect(&self, preds: &[(AttrId, ValueId)]) -> MemberSet {
        if preds.is_empty() {
            return MemberSet::All;
        }
        let path = kernels::active();
        let mut order: Vec<&Container> = Vec::with_capacity(preds.len());
        for &(attr, value) in preds {
            match self.container(attr, value) {
                Some(c) if c.card() > 0 => order.push(c),
                _ => return MemberSet::Ids(Vec::new()),
            }
        }
        order.sort_by_key(|c| c.card());

        let mut acc = MemberSet::All;
        let mut scratch: Vec<u32> = Vec::new();
        for c in order {
            acc = match (acc, c) {
                // First container seeds the working set in its own shape;
                // runs expand to words (they only materialize for very
                // long runs, where words stay compact and kernel-friendly).
                (MemberSet::All, Container::Array(ids)) => MemberSet::Ids(ids.clone()),
                (MemberSet::All, Container::Bitmap { words, .. }) => {
                    MemberSet::Words(words.clone())
                }
                (MemberSet::All, c @ Container::Runs { .. }) => {
                    let mut words = vec![0u64; self.rows.div_ceil(64)];
                    c.write_words(&mut words);
                    MemberSet::Words(words)
                }
                (MemberSet::Ids(ids), Container::Array(other)) => {
                    scratch.clear();
                    kernels::intersect_sorted_u32(path, &ids, other, &mut scratch);
                    MemberSet::Ids(std::mem::take(&mut scratch))
                }
                (MemberSet::Ids(ids), Container::Bitmap { words, .. }) => {
                    scratch.clear();
                    kernels::array_bitmap_probe(path, &ids, words, &mut scratch);
                    MemberSet::Ids(std::mem::take(&mut scratch))
                }
                (MemberSet::Ids(ids), c @ Container::Runs { .. }) => {
                    scratch.clear();
                    scratch.extend(ids.iter().copied().filter(|&id| c.contains(id)));
                    MemberSet::Ids(std::mem::take(&mut scratch))
                }
                (MemberSet::Words(mut acc_words), Container::Bitmap { words, .. }) => {
                    kernels::and_words(path, &mut acc_words, words);
                    MemberSet::Words(acc_words)
                }
                // Array against words downgrades to ids: the array is the
                // smaller side by sort order, so ids stay compact.
                (MemberSet::Words(words), Container::Array(ids)) => {
                    scratch.clear();
                    kernels::array_bitmap_probe(path, ids, &words, &mut scratch);
                    MemberSet::Ids(std::mem::take(&mut scratch))
                }
                (MemberSet::Words(acc_words), c @ Container::Runs { .. }) => {
                    let mut run_words = vec![0u64; acc_words.len()];
                    c.write_words(&mut run_words);
                    kernels::and_words(path, &mut run_words, &acc_words);
                    MemberSet::Words(run_words)
                }
            };
            if acc.is_empty() {
                return acc;
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids_of(set: MemberSet, rows: usize) -> Vec<u32> {
        set.into_bitset(rows).to_vec()
    }

    #[test]
    fn container_promotion_by_bytes() {
        // 3 ids over 1024 rows: array 12 B < bitmap 128 B; not a single run.
        assert!(matches!(
            Container::build(&[1, 50, 900], 1024),
            Container::Array(_)
        ));
        // One long run: runs 8 B beat both.
        assert!(matches!(
            Container::build(&(0..900).collect::<Vec<_>>(), 1024),
            Container::Runs { .. }
        ));
        // Every even id: no runs, array 4·512 B > bitmap 128 B.
        let evens: Vec<u32> = (0..1024).step_by(2).collect();
        assert!(matches!(
            Container::build(&evens, 1024),
            Container::Bitmap { .. }
        ));
    }

    #[test]
    fn container_contains_and_decode_agree() {
        let path = kernels::KernelPath::Scalar;
        for ids in [
            vec![],
            vec![0, 63, 64, 65, 127, 500],
            (10..200).collect::<Vec<u32>>(),
            (0..512).step_by(2).collect(),
        ] {
            let c = Container::build(&ids, 512);
            let mut decoded = Vec::new();
            c.decode_into(path, &mut decoded);
            assert_eq!(decoded, ids, "{}", c.class());
            assert_eq!(c.card(), ids.len());
            for probe in [0u32, 1, 63, 64, 65, 199, 500, 511] {
                assert_eq!(c.contains(probe), ids.contains(&probe), "{}", c.class());
            }
        }
    }

    #[test]
    fn intersect_mixed_classes() {
        let rows = 600usize;
        let sparse: Vec<u32> = vec![5, 64, 128, 300, 599];
        let clustered: Vec<u32> = (0..400).collect();
        let dense: Vec<u32> = (0..600).step_by(2).collect();
        let containers = vec![vec![
            Container::build(&sparse, rows),
            Container::build(&clustered, rows),
            Container::build(&dense, rows),
        ]];
        let idx = CompressedIndex::from_containers(containers, rows).unwrap();
        let a = AttrId(0);
        let q = |vals: &[u32]| {
            let preds: Vec<_> = vals.iter().map(|&v| (a, ValueId(v))).collect();
            ids_of(idx.intersect(&preds), rows)
        };
        assert_eq!(q(&[0, 1]), vec![5, 64, 128, 300]);
        assert_eq!(q(&[0, 2]), vec![64, 128, 300]);
        assert_eq!(q(&[1, 2]), (0..400).step_by(2).collect::<Vec<_>>());
        assert_eq!(q(&[0, 1, 2]), vec![64, 128, 300]);
        assert_eq!(ids_of(idx.intersect(&[]), rows).len(), rows);
    }

    #[test]
    fn intersect_missing_value_is_empty() {
        let idx = CompressedIndex::from_containers(vec![vec![Container::build(&[1, 2], 10)]], 10)
            .unwrap();
        let preds = [(AttrId(0), ValueId(7))];
        assert!(idx.intersect(&preds).is_empty());
    }

    #[test]
    fn from_containers_rejects_damage() {
        let bad_arr = vec![vec![Container::Array(vec![3, 3])]];
        assert!(CompressedIndex::from_containers(bad_arr, 10).is_err());
        let bad_card = vec![vec![Container::Bitmap {
            words: vec![0b111],
            card: 2,
        }]];
        assert!(CompressedIndex::from_containers(bad_card, 10).is_err());
        let bad_tail = vec![vec![Container::Bitmap {
            words: vec![1u64 << 12],
            card: 1,
        }]];
        assert!(CompressedIndex::from_containers(bad_tail, 10).is_err());
        let bad_runs = vec![vec![Container::Runs {
            runs: vec![(0, 5), (3, 2)],
            card: 7,
        }]];
        assert!(CompressedIndex::from_containers(bad_runs, 10).is_err());
        let ok = vec![vec![Container::Runs {
            runs: vec![(0, 5), (7, 2)],
            card: 7,
        }]];
        assert!(CompressedIndex::from_containers(ok, 10).is_ok());
    }

    #[test]
    fn stats_census() {
        let rows = 1024usize;
        let idx = CompressedIndex::from_containers(
            vec![vec![
                Container::build(&[1, 2, 900], rows),
                Container::build(&(0..800).collect::<Vec<_>>(), rows),
                Container::build(&(0..1024).step_by(2).collect::<Vec<_>>(), rows),
            ]],
            rows,
        )
        .unwrap();
        let s = idx.stats();
        assert_eq!((s.arrays, s.runs, s.bitmaps), (1, 1, 1));
        assert_eq!(s.flat_bytes, 4 * (3 + 800 + 512));
        assert!(s.resident_bytes < s.flat_bytes);
    }
}
