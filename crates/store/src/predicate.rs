//! Selection predicates and queries.
//!
//! A reviewer/item group is described by a set of attribute–value pairs
//! (Section 3.1); an exploration operation is a selection query — the union
//! of the reviewer-group and item-group descriptions (Section 4.3). Queries
//! support the edit operations the Recommendation Builder enumerates: add a
//! pair, remove a pair, change a pair's value.

use crate::schema::{AttrId, Entity};
use crate::value::ValueId;
use serde::{Deserialize, Serialize};

/// One attribute–value predicate, e.g. `⟨city, NYC⟩` on the item side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AttrValue {
    /// Which entity table the attribute belongs to.
    pub entity: Entity,
    /// The attribute.
    pub attr: AttrId,
    /// The (dictionary-encoded) value. For multi-valued attributes the
    /// predicate is set-membership.
    pub value: ValueId,
}

impl AttrValue {
    /// Creates a predicate.
    pub fn new(entity: Entity, attr: AttrId, value: ValueId) -> Self {
        Self { entity, attr, value }
    }
}

/// A conjunctive selection query over both entity tables.
///
/// The predicate list is kept sorted and duplicate-free, so queries have a
/// canonical form: two queries are equal iff they select the same groups.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SelectionQuery {
    preds: Vec<AttrValue>,
}

impl SelectionQuery {
    /// The empty query (selects everything).
    pub fn all() -> Self {
        Self::default()
    }

    /// Builds a query from predicates (deduplicated, canonicalized).
    pub fn from_preds(preds: impl IntoIterator<Item = AttrValue>) -> Self {
        let mut q = Self::default();
        for p in preds {
            q.add(p);
        }
        q
    }

    /// All predicates in canonical order.
    pub fn preds(&self) -> &[AttrValue] {
        &self.preds
    }

    /// Predicates restricted to one entity.
    pub fn preds_of(&self, entity: Entity) -> impl Iterator<Item = &AttrValue> {
        self.preds.iter().filter(move |p| p.entity == entity)
    }

    /// Number of predicates.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Whether the query selects everything.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Whether the query contains this exact predicate.
    pub fn contains(&self, p: &AttrValue) -> bool {
        self.preds.binary_search(p).is_ok()
    }

    /// Whether the query constrains `(entity, attr)` (with any value).
    pub fn constrains(&self, entity: Entity, attr: AttrId) -> bool {
        self.preds
            .iter()
            .any(|p| p.entity == entity && p.attr == attr)
    }

    /// The value this query pins `(entity, attr)` to, if any.
    pub fn value_of(&self, entity: Entity, attr: AttrId) -> Option<ValueId> {
        self.preds
            .iter()
            .find(|p| p.entity == entity && p.attr == attr)
            .map(|p| p.value)
    }

    /// Adds a predicate in place (no-op if already present).
    pub fn add(&mut self, p: AttrValue) {
        if let Err(pos) = self.preds.binary_search(&p) {
            self.preds.insert(pos, p);
        }
    }

    /// Removes a predicate in place (no-op if absent).
    pub fn remove(&mut self, p: &AttrValue) {
        if let Ok(pos) = self.preds.binary_search(p) {
            self.preds.remove(pos);
        }
    }

    /// Returns a copy with `p` added (a *filter* / drill-down edit).
    pub fn with_added(&self, p: AttrValue) -> Self {
        let mut q = self.clone();
        q.add(p);
        q
    }

    /// Returns a copy with `p` removed (a *generalize* / roll-up edit).
    pub fn with_removed(&self, p: &AttrValue) -> Self {
        let mut q = self.clone();
        q.remove(p);
        q
    }

    /// Returns a copy with the value of `(entity, attr)` changed to
    /// `new_value` (a *change* edit, counting as two diffs: one removal plus
    /// one addition).
    ///
    /// Returns `None` if the query does not constrain `(entity, attr)`.
    pub fn with_changed(&self, entity: Entity, attr: AttrId, new_value: ValueId) -> Option<Self> {
        let old = self
            .preds
            .iter()
            .find(|p| p.entity == entity && p.attr == attr)
            .copied()?;
        let mut q = self.clone();
        q.remove(&old);
        q.add(AttrValue::new(entity, attr, new_value));
        Some(q)
    }

    /// Size of the symmetric difference of the two predicate sets — the
    /// paper's measure of how far a candidate operation strays from the
    /// current query ("differ in at most 2 attribute-value pairs").
    pub fn diff_size(&self, other: &Self) -> usize {
        let mut diff = 0;
        for p in &self.preds {
            if !other.contains(p) {
                diff += 1;
            }
        }
        for p in &other.preds {
            if !self.contains(p) {
                diff += 1;
            }
        }
        diff
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(entity: Entity, attr: u16, value: u32) -> AttrValue {
        AttrValue::new(entity, AttrId(attr), ValueId(value))
    }

    #[test]
    fn canonical_form() {
        let a = SelectionQuery::from_preds(vec![
            p(Entity::Item, 1, 2),
            p(Entity::Reviewer, 0, 0),
            p(Entity::Item, 1, 2), // dup
        ]);
        let b = SelectionQuery::from_preds(vec![
            p(Entity::Reviewer, 0, 0),
            p(Entity::Item, 1, 2),
        ]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn contains_and_constrains() {
        let q = SelectionQuery::from_preds(vec![p(Entity::Item, 1, 2)]);
        assert!(q.contains(&p(Entity::Item, 1, 2)));
        assert!(!q.contains(&p(Entity::Item, 1, 3)));
        assert!(q.constrains(Entity::Item, AttrId(1)));
        assert!(!q.constrains(Entity::Reviewer, AttrId(1)));
        assert_eq!(q.value_of(Entity::Item, AttrId(1)), Some(ValueId(2)));
    }

    #[test]
    fn edit_operations() {
        let q = SelectionQuery::from_preds(vec![p(Entity::Item, 0, 0)]);
        let added = q.with_added(p(Entity::Reviewer, 1, 5));
        assert_eq!(added.len(), 2);
        assert_eq!(q.diff_size(&added), 1);

        let removed = q.with_removed(&p(Entity::Item, 0, 0));
        assert!(removed.is_empty());
        assert_eq!(q.diff_size(&removed), 1);

        let changed = q.with_changed(Entity::Item, AttrId(0), ValueId(9)).unwrap();
        assert_eq!(changed.len(), 1);
        assert_eq!(q.diff_size(&changed), 2, "change counts as two diffs");

        assert!(q.with_changed(Entity::Reviewer, AttrId(0), ValueId(1)).is_none());
    }

    #[test]
    fn diff_size_symmetric() {
        let a = SelectionQuery::from_preds(vec![p(Entity::Item, 0, 0), p(Entity::Item, 1, 1)]);
        let b = SelectionQuery::from_preds(vec![p(Entity::Item, 0, 0), p(Entity::Item, 2, 2)]);
        assert_eq!(a.diff_size(&b), 2);
        assert_eq!(b.diff_size(&a), 2);
        assert_eq!(a.diff_size(&a), 0);
    }

    #[test]
    fn preds_of_filters_entity() {
        let q = SelectionQuery::from_preds(vec![
            p(Entity::Item, 0, 0),
            p(Entity::Reviewer, 0, 1),
            p(Entity::Item, 2, 2),
        ]);
        assert_eq!(q.preds_of(Entity::Item).count(), 2);
        assert_eq!(q.preds_of(Entity::Reviewer).count(), 1);
    }

    #[test]
    fn add_remove_idempotent() {
        let mut q = SelectionQuery::all();
        q.add(p(Entity::Item, 0, 0));
        q.add(p(Entity::Item, 0, 0));
        assert_eq!(q.len(), 1);
        q.remove(&p(Entity::Item, 0, 0));
        q.remove(&p(Entity::Item, 0, 0));
        assert!(q.is_empty());
    }
}
