//! Selection predicates and queries.
//!
//! A reviewer/item group is described by a set of attribute–value pairs
//! (Section 3.1); an exploration operation is a selection query — the union
//! of the reviewer-group and item-group descriptions (Section 4.3). Queries
//! support the edit operations the Recommendation Builder enumerates: add a
//! pair, remove a pair, change a pair's value.

use crate::schema::{AttrId, Entity};
use crate::value::ValueId;
use serde::{Deserialize, Serialize};

/// One attribute–value predicate, e.g. `⟨city, NYC⟩` on the item side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AttrValue {
    /// Which entity table the attribute belongs to.
    pub entity: Entity,
    /// The attribute.
    pub attr: AttrId,
    /// The (dictionary-encoded) value. For multi-valued attributes the
    /// predicate is set-membership.
    pub value: ValueId,
}

impl AttrValue {
    /// Creates a predicate.
    pub fn new(entity: Entity, attr: AttrId, value: ValueId) -> Self {
        Self {
            entity,
            attr,
            value,
        }
    }
}

/// A conjunctive selection query over both entity tables.
///
/// The predicate list is kept sorted and duplicate-free, so queries have a
/// canonical form: two queries are equal iff they select the same groups.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SelectionQuery {
    preds: Vec<AttrValue>,
}

impl SelectionQuery {
    /// The empty query (selects everything).
    pub fn all() -> Self {
        Self::default()
    }

    /// Builds a query from predicates (deduplicated, canonicalized).
    pub fn from_preds(preds: impl IntoIterator<Item = AttrValue>) -> Self {
        let mut q = Self {
            preds: preds.into_iter().collect(),
        };
        q.canonicalize();
        q
    }

    /// Restores the canonical form: predicates sorted ascending with
    /// duplicates removed. Every constructor and edit maintains this
    /// invariant already, so this is a no-op on queries built through the
    /// public API; it exists so code that obtains a query from elsewhere
    /// (deserialization, manual construction) can re-establish the
    /// invariant before using the query as a cache key.
    pub fn canonicalize(&mut self) {
        self.preds.sort_unstable();
        self.preds.dedup();
    }

    /// Whether the predicate list is in canonical form (strictly ascending).
    pub fn is_canonical(&self) -> bool {
        self.preds.windows(2).all(|w| w[0] < w[1])
    }

    /// A stable 64-bit digest of the canonical predicate list, suitable as
    /// a cross-session cache key. Equal queries always collide; unequal
    /// queries collide with probability ~2⁻⁶⁴ (FNV-1a over the encoded
    /// predicates).
    pub fn fingerprint(&self) -> u64 {
        debug_assert!(self.is_canonical());
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
            }
        };
        mix(self.preds.len() as u64);
        for p in &self.preds {
            mix(match p.entity {
                Entity::Reviewer => 0,
                Entity::Item => 1,
            });
            mix(u64::from(p.attr.0));
            mix(u64::from(p.value.0));
        }
        h
    }

    /// All predicates in canonical order.
    pub fn preds(&self) -> &[AttrValue] {
        &self.preds
    }

    /// Predicates restricted to one entity.
    pub fn preds_of(&self, entity: Entity) -> impl Iterator<Item = &AttrValue> {
        self.preds.iter().filter(move |p| p.entity == entity)
    }

    /// Number of predicates.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Whether the query selects everything.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Whether the query contains this exact predicate.
    pub fn contains(&self, p: &AttrValue) -> bool {
        self.preds.binary_search(p).is_ok()
    }

    /// Whether the query constrains `(entity, attr)` (with any value).
    pub fn constrains(&self, entity: Entity, attr: AttrId) -> bool {
        self.preds
            .iter()
            .any(|p| p.entity == entity && p.attr == attr)
    }

    /// The value this query pins `(entity, attr)` to, if any.
    pub fn value_of(&self, entity: Entity, attr: AttrId) -> Option<ValueId> {
        self.preds
            .iter()
            .find(|p| p.entity == entity && p.attr == attr)
            .map(|p| p.value)
    }

    /// Adds a predicate in place (no-op if already present).
    pub fn add(&mut self, p: AttrValue) {
        if let Err(pos) = self.preds.binary_search(&p) {
            self.preds.insert(pos, p);
        }
    }

    /// Removes a predicate in place (no-op if absent).
    pub fn remove(&mut self, p: &AttrValue) {
        if let Ok(pos) = self.preds.binary_search(p) {
            self.preds.remove(pos);
        }
    }

    /// Returns a copy with `p` added (a *filter* / drill-down edit).
    pub fn with_added(&self, p: AttrValue) -> Self {
        let mut q = self.clone();
        q.add(p);
        q
    }

    /// Returns a copy with `p` removed (a *generalize* / roll-up edit).
    pub fn with_removed(&self, p: &AttrValue) -> Self {
        let mut q = self.clone();
        q.remove(p);
        q
    }

    /// Returns a copy with the value of `(entity, attr)` changed to
    /// `new_value` (a *change* edit, counting as two diffs: one removal plus
    /// one addition).
    ///
    /// Returns `None` if the query does not constrain `(entity, attr)`.
    pub fn with_changed(&self, entity: Entity, attr: AttrId, new_value: ValueId) -> Option<Self> {
        let old = self
            .preds
            .iter()
            .find(|p| p.entity == entity && p.attr == attr)
            .copied()?;
        let mut q = self.clone();
        q.remove(&old);
        q.add(AttrValue::new(entity, attr, new_value));
        Some(q)
    }

    /// If `child` is exactly `self` plus one extra predicate (a pure
    /// drill-down edit), returns that predicate. Returns `None` for any
    /// other relationship — removals, changes, multi-predicate diffs, or
    /// equality — so callers can decide whether a candidate group can be
    /// derived by filtering the parent's columns.
    ///
    /// Both queries are canonical (sorted, deduplicated), so this is a
    /// single two-pointer merge pass.
    pub fn single_added_pred(&self, child: &Self) -> Option<AttrValue> {
        if child.preds.len() != self.preds.len() + 1 {
            return None;
        }
        let mut added = None;
        let mut mine = self.preds.iter().peekable();
        for p in &child.preds {
            match mine.peek() {
                Some(&m) if m == p => {
                    mine.next();
                }
                _ => {
                    if added.replace(*p).is_some() {
                        return None;
                    }
                }
            }
        }
        // Every parent predicate must have been matched in order.
        if mine.next().is_some() {
            return None;
        }
        added
    }

    /// If `child` is a **strict superset** of `self`, returns the added
    /// predicates (at least one) — the multi-predicate generalization of
    /// [`single_added_pred`](Self::single_added_pred), used to derive a
    /// candidate's group from *any* cached ancestor's columns, not just
    /// the direct parent's. Returns `None` if any of `self`'s predicates
    /// is missing from `child`, or if the queries are equal.
    ///
    /// Both queries are canonical (sorted, deduplicated), so this is a
    /// single two-pointer merge pass.
    pub fn added_preds(&self, child: &Self) -> Option<Vec<AttrValue>> {
        if child.preds.len() <= self.preds.len() {
            return None;
        }
        let mut added = Vec::with_capacity(child.preds.len() - self.preds.len());
        let mut mine = self.preds.iter().peekable();
        for p in &child.preds {
            match mine.peek() {
                Some(&m) if m == p => {
                    mine.next();
                }
                _ => added.push(*p),
            }
        }
        // Every ancestor predicate must have been matched in order.
        if mine.next().is_some() {
            return None;
        }
        Some(added)
    }

    /// Size of the symmetric difference of the two predicate sets — the
    /// paper's measure of how far a candidate operation strays from the
    /// current query ("differ in at most 2 attribute-value pairs").
    pub fn diff_size(&self, other: &Self) -> usize {
        let mut diff = 0;
        for p in &self.preds {
            if !other.contains(p) {
                diff += 1;
            }
        }
        for p in &other.preds {
            if !self.contains(p) {
                diff += 1;
            }
        }
        diff
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(entity: Entity, attr: u16, value: u32) -> AttrValue {
        AttrValue::new(entity, AttrId(attr), ValueId(value))
    }

    #[test]
    fn canonical_form() {
        let a = SelectionQuery::from_preds(vec![
            p(Entity::Item, 1, 2),
            p(Entity::Reviewer, 0, 0),
            p(Entity::Item, 1, 2), // dup
        ]);
        let b = SelectionQuery::from_preds(vec![p(Entity::Reviewer, 0, 0), p(Entity::Item, 1, 2)]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn contains_and_constrains() {
        let q = SelectionQuery::from_preds(vec![p(Entity::Item, 1, 2)]);
        assert!(q.contains(&p(Entity::Item, 1, 2)));
        assert!(!q.contains(&p(Entity::Item, 1, 3)));
        assert!(q.constrains(Entity::Item, AttrId(1)));
        assert!(!q.constrains(Entity::Reviewer, AttrId(1)));
        assert_eq!(q.value_of(Entity::Item, AttrId(1)), Some(ValueId(2)));
    }

    #[test]
    fn edit_operations() {
        let q = SelectionQuery::from_preds(vec![p(Entity::Item, 0, 0)]);
        let added = q.with_added(p(Entity::Reviewer, 1, 5));
        assert_eq!(added.len(), 2);
        assert_eq!(q.diff_size(&added), 1);

        let removed = q.with_removed(&p(Entity::Item, 0, 0));
        assert!(removed.is_empty());
        assert_eq!(q.diff_size(&removed), 1);

        let changed = q.with_changed(Entity::Item, AttrId(0), ValueId(9)).unwrap();
        assert_eq!(changed.len(), 1);
        assert_eq!(q.diff_size(&changed), 2, "change counts as two diffs");

        assert!(q
            .with_changed(Entity::Reviewer, AttrId(0), ValueId(1))
            .is_none());
    }

    #[test]
    fn diff_size_symmetric() {
        let a = SelectionQuery::from_preds(vec![p(Entity::Item, 0, 0), p(Entity::Item, 1, 1)]);
        let b = SelectionQuery::from_preds(vec![p(Entity::Item, 0, 0), p(Entity::Item, 2, 2)]);
        assert_eq!(a.diff_size(&b), 2);
        assert_eq!(b.diff_size(&a), 2);
        assert_eq!(a.diff_size(&a), 0);
    }

    #[test]
    fn preds_of_filters_entity() {
        let q = SelectionQuery::from_preds(vec![
            p(Entity::Item, 0, 0),
            p(Entity::Reviewer, 0, 1),
            p(Entity::Item, 2, 2),
        ]);
        assert_eq!(q.preds_of(Entity::Item).count(), 2);
        assert_eq!(q.preds_of(Entity::Reviewer).count(), 1);
    }

    #[test]
    fn canonicalize_restores_invariant() {
        // Bypass the constructors to simulate a query whose predicate
        // order was lost (e.g. built by hand), then re-canonicalize.
        let mut q =
            SelectionQuery::from_preds(vec![p(Entity::Item, 1, 2), p(Entity::Reviewer, 0, 0)]);
        assert!(q.is_canonical());
        q.canonicalize(); // idempotent
        assert!(q.is_canonical());
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn fingerprint_is_order_insensitive_and_discriminating() {
        let a = SelectionQuery::from_preds(vec![p(Entity::Item, 1, 2), p(Entity::Reviewer, 0, 0)]);
        let b = SelectionQuery::from_preds(vec![
            p(Entity::Reviewer, 0, 0),
            p(Entity::Item, 1, 2),
            p(Entity::Item, 1, 2), // dup
        ]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = a.with_added(p(Entity::Item, 3, 0));
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_ne!(SelectionQuery::all().fingerprint(), a.fingerprint());
    }

    #[test]
    fn added_preds_detects_any_superset() {
        let ancestor = SelectionQuery::from_preds(vec![p(Entity::Item, 0, 0)]);
        let a = p(Entity::Reviewer, 1, 5);
        let b = p(Entity::Item, 2, 3);
        let child = ancestor.with_added(a).with_added(b);
        assert_eq!(ancestor.added_preds(&child), Some(vec![a, b]));
        assert_eq!(
            SelectionQuery::all().added_preds(&child),
            Some(child.preds().to_vec()),
            "from the empty query every predicate is an addition"
        );
        // Not supersets: equality, removal, change.
        assert_eq!(ancestor.added_preds(&ancestor), None);
        assert_eq!(child.added_preds(&ancestor), None);
        let changed = ancestor
            .with_changed(Entity::Item, AttrId(0), ValueId(3))
            .unwrap();
        assert_eq!(ancestor.added_preds(&changed), None);
        // Agreement with the single-pred special case.
        let one = ancestor.with_added(a);
        assert_eq!(ancestor.added_preds(&one), Some(vec![a]));
    }

    #[test]
    fn single_added_pred_detects_pure_drill_down() {
        let parent = SelectionQuery::from_preds(vec![p(Entity::Item, 0, 0)]);
        let extra = p(Entity::Reviewer, 1, 5);
        let child = parent.with_added(extra);
        assert_eq!(parent.single_added_pred(&child), Some(extra));

        // Adding a predicate that sorts before the existing one.
        let early = p(Entity::Reviewer, 0, 0);
        assert_eq!(
            parent.single_added_pred(&parent.with_added(early)),
            Some(early)
        );

        // From the empty query.
        let root = SelectionQuery::all();
        assert_eq!(root.single_added_pred(&parent), Some(p(Entity::Item, 0, 0)));

        // Not a drill-down: equal, removal, change, two additions.
        assert_eq!(parent.single_added_pred(&parent), None);
        assert_eq!(child.single_added_pred(&parent), None);
        let changed = parent
            .with_changed(Entity::Item, AttrId(0), ValueId(3))
            .unwrap();
        assert_eq!(parent.single_added_pred(&changed), None);
        let two = child.with_added(p(Entity::Item, 2, 2));
        assert_eq!(parent.single_added_pred(&two), None);
        // Same length as a drill-down but a predicate was swapped.
        let swapped = SelectionQuery::from_preds(vec![p(Entity::Item, 0, 1), extra]);
        assert_eq!(parent.single_added_pred(&swapped), None);
    }

    #[test]
    fn add_remove_idempotent() {
        let mut q = SelectionQuery::all();
        q.add(p(Entity::Item, 0, 0));
        q.add(p(Entity::Item, 0, 0));
        assert_eq!(q.len(), 1);
        q.remove(&p(Entity::Item, 0, 0));
        q.remove(&p(Entity::Item, 0, 0));
        assert!(q.is_empty());
    }
}
