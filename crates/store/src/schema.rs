//! Schemas for the two entity tables (reviewers and items).
//!
//! Per the data model (Section 3.1), each entity table has a set of
//! objective attributes `I_A` / `U_A`; a value may be atomic or a set
//! (multi-valued), like a restaurant's cuisines.

use serde::{Deserialize, Serialize};

/// Which entity table an attribute or group refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Entity {
    /// The reviewer (user) table `U`.
    Reviewer,
    /// The item table `I`.
    Item,
}

impl Entity {
    /// The other entity.
    pub fn other(self) -> Self {
        match self {
            Entity::Reviewer => Entity::Item,
            Entity::Item => Entity::Reviewer,
        }
    }
}

impl std::fmt::Display for Entity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Entity::Reviewer => f.write_str("reviewer"),
            Entity::Item => f.write_str("item"),
        }
    }
}

/// Index of an attribute within its entity's schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AttrId(pub u16);

impl AttrId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Definition of one objective attribute.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttributeDef {
    /// Human-readable name (`"city"`, `"cuisine"`, …).
    pub name: String,
    /// Whether a row may carry a *set* of values for this attribute.
    pub multi_valued: bool,
}

/// The ordered attribute list of one entity table.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    attrs: Vec<AttributeDef>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an attribute and returns its id.
    ///
    /// # Panics
    /// Panics if an attribute with the same name already exists.
    pub fn add(&mut self, name: impl Into<String>, multi_valued: bool) -> AttrId {
        let name = name.into();
        assert!(
            self.attr_by_name(&name).is_none(),
            "duplicate attribute name: {name}"
        );
        let id = AttrId(u16::try_from(self.attrs.len()).expect("schema overflow"));
        self.attrs.push(AttributeDef { name, multi_valued });
        id
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// Whether the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Attribute definition by id.
    ///
    /// # Panics
    /// Panics on out-of-range ids.
    pub fn attr(&self, id: AttrId) -> &AttributeDef {
        &self.attrs[id.index()]
    }

    /// Finds an attribute id by name.
    pub fn attr_by_name(&self, name: &str) -> Option<AttrId> {
        self.attrs
            .iter()
            .position(|a| a.name == name)
            .map(|i| AttrId(i as u16))
    }

    /// Iterates `(id, def)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &AttributeDef)> {
        self.attrs
            .iter()
            .enumerate()
            .map(|(i, d)| (AttrId(i as u16), d))
    }

    /// All attribute ids.
    pub fn attr_ids(&self) -> impl Iterator<Item = AttrId> + '_ {
        (0..self.attrs.len()).map(|i| AttrId(i as u16))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut s = Schema::new();
        let city = s.add("city", false);
        let cuisine = s.add("cuisine", true);
        assert_eq!(s.len(), 2);
        assert_eq!(s.attr(city).name, "city");
        assert!(!s.attr(city).multi_valued);
        assert!(s.attr(cuisine).multi_valued);
        assert_eq!(s.attr_by_name("cuisine"), Some(cuisine));
        assert_eq!(s.attr_by_name("nope"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn duplicate_name_panics() {
        let mut s = Schema::new();
        s.add("city", false);
        s.add("city", false);
    }

    #[test]
    fn iter_in_order() {
        let mut s = Schema::new();
        s.add("a", false);
        s.add("b", true);
        let names: Vec<_> = s.iter().map(|(_, d)| d.name.clone()).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(s.attr_ids().count(), 2);
    }

    #[test]
    fn entity_other() {
        assert_eq!(Entity::Reviewer.other(), Entity::Item);
        assert_eq!(Entity::Item.other(), Entity::Reviewer);
        assert_eq!(Entity::Reviewer.to_string(), "reviewer");
    }
}
