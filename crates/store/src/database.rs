//! The subjective database `D = ⟨I, U, R⟩`.
//!
//! [`SubjectiveDb`] owns the two entity tables, the rating table, and one
//! compressed posting index per entity ([`CompressedIndex`]). It answers
//! the two queries the exploration engine needs: *select an entity group*
//! (conjunction of attribute–value predicates) and *materialize the rating
//! group* linking a reviewer group to an item group — choosing per query
//! between an adjacency walk and a kernel-driven full-scan membership
//! probe ([`GroupRoute`]) using exact cardinalities read off the
//! containers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use subdex_stats::kernels;

use crate::cache::GroupCache;
use crate::cindex::CompressedIndex;
use crate::group::{EntityGroup, RatingGroup};
use crate::index::InvertedIndex;
use crate::predicate::{AttrValue, SelectionQuery};
use crate::ratings::{RatingTable, RecordId};
use crate::scan::GroupColumns;
use crate::schema::{AttrId, Entity, Schema};
use crate::table::EntityTable;
use crate::value::{Value, ValueId};

/// Summary statistics of a database, mirroring Table 2 of the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbStats {
    /// Total number of objective attributes (reviewer + item side).
    pub attr_count: usize,
    /// Largest dictionary size over all attributes.
    pub max_values: usize,
    /// Number of rating dimensions.
    pub dim_count: usize,
    /// |R| — number of rating records.
    pub rating_count: usize,
    /// |U| — number of reviewers.
    pub reviewer_count: usize,
    /// |I| — number of items.
    pub item_count: usize,
}

/// Which strategy materialized a rating group — the planner's routing
/// decision, taken per query from exact container cardinalities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupRoute {
    /// No predicates: the group is every record, emitted directly.
    Full,
    /// Adjacency walk from the cheaper constrained entity side, filtered
    /// by the other side's member set, then sorted to canonical order.
    Walk,
    /// Branch-free membership probe over the full rating reviewer/item
    /// columns against the sides' bitmap words — O(|R|) with no sort
    /// (record ids fall out ascending), which beats the walk when the
    /// selected members touch a large share of the table.
    Probe,
}

/// Lifetime query counters of one database's index layer. Shared across
/// database clones through an `Arc`, so the persistence layer's
/// clone-and-swap publish does not reset them.
#[derive(Debug, Default)]
struct IndexCounters {
    /// Conjunctive container intersections served by `select_group`.
    intersections: AtomicU64,
    /// Groups materialized via [`GroupRoute::Walk`].
    route_walk: AtomicU64,
    /// Groups materialized via [`GroupRoute::Probe`].
    route_probe: AtomicU64,
}

/// Point-in-time index-layer statistics: container census and byte
/// footprint (both entity sides merged) plus lifetime routing counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Values encoded as sorted arrays.
    pub array_containers: usize,
    /// Values encoded as packed bitmaps.
    pub bitmap_containers: usize,
    /// Values encoded as run lists.
    pub run_containers: usize,
    /// Resident container payload bytes.
    pub resident_bytes: usize,
    /// What flat `Vec<u32>` posting lists would cost for the same postings.
    pub flat_bytes: usize,
    /// Container intersections served.
    pub intersections: u64,
    /// Groups materialized by adjacency walk.
    pub route_walk: u64,
    /// Groups materialized by full-scan probe.
    pub route_probe: u64,
}

/// An in-memory subjective database with query indexes.
///
/// The database is immutable through shared references; the only mutation
/// is [`append_ratings`](Self::append_ratings), which requires `&mut self`
/// and bumps the [`epoch`](Self::epoch). Holders of an `Arc<SubjectiveDb>`
/// therefore always see an epoch-consistent view: the persistence layer
/// publishes appends by cloning, mutating the clone, and swapping the `Arc`.
#[derive(Debug, Clone)]
pub struct SubjectiveDb {
    reviewers: EntityTable,
    items: EntityTable,
    ratings: RatingTable,
    reviewer_index: CompressedIndex,
    item_index: CompressedIndex,
    /// Lifetime query counters, shared across clones (see [`IndexCounters`]).
    counters: Arc<IndexCounters>,
    /// Bumped on every rating append; group and distance caches key their
    /// validity to this.
    epoch: u64,
}

impl SubjectiveDb {
    /// Assembles a database and builds both inverted indexes.
    ///
    /// # Panics
    /// Panics if any rating record references an out-of-range reviewer or
    /// item (enforced earlier by `RatingTableBuilder::build`, re-checked
    /// here defensively in debug builds).
    pub fn new(reviewers: EntityTable, items: EntityTable, ratings: RatingTable) -> Self {
        debug_assert!(ratings
            .reviewer_column()
            .iter()
            .all(|&r| (r as usize) < reviewers.len()));
        debug_assert!(ratings
            .item_column()
            .iter()
            .all(|&i| (i as usize) < items.len()));
        let reviewer_index = CompressedIndex::from_inverted(&InvertedIndex::build(&reviewers));
        let item_index = CompressedIndex::from_inverted(&InvertedIndex::build(&items));
        Self {
            reviewers,
            items,
            ratings,
            reviewer_index,
            item_index,
            counters: Arc::new(IndexCounters::default()),
            epoch: 0,
        }
    }

    /// Reassembles a database from already-validated parts plus persisted
    /// compressed indexes (the snapshot-load path, which skips index
    /// rebuilding). Cross-checks that the indexes cover the tables and that
    /// every rating references a real entity row.
    pub fn from_parts(
        reviewers: EntityTable,
        items: EntityTable,
        ratings: RatingTable,
        reviewer_index: CompressedIndex,
        item_index: CompressedIndex,
        epoch: u64,
    ) -> Result<Self, crate::error::StoreError> {
        use crate::error::StoreError;
        if reviewer_index.rows() != reviewers.len() || item_index.rows() != items.len() {
            return Err(StoreError::invalid(
                "index row count disagrees with its entity table",
            ));
        }
        if ratings
            .reviewer_column()
            .iter()
            .any(|&r| (r as usize) >= reviewers.len())
            || ratings
                .item_column()
                .iter()
                .any(|&i| (i as usize) >= items.len())
        {
            return Err(StoreError::invalid(
                "rating references a missing entity row",
            ));
        }
        Ok(Self {
            reviewers,
            items,
            ratings,
            reviewer_index,
            item_index,
            counters: Arc::new(IndexCounters::default()),
            epoch,
        })
    }

    /// The append epoch: 0 for a freshly built database, bumped by every
    /// [`append_ratings`](Self::append_ratings). Caches of derived group
    /// state are valid only for the epoch they were built against.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Validates drafts against this database without mutating anything
    /// (arity, scale, and that both entity rows exist). The persistence
    /// layer calls this before making a WAL record durable.
    pub fn check_ratings(
        &self,
        drafts: &[crate::ratings::RatingDraft],
    ) -> Result<(), crate::error::StoreError> {
        self.ratings
            .check_drafts(drafts, self.reviewers.len(), self.items.len())
    }

    /// Appends rating records, rebuilding the adjacency indexes and bumping
    /// the epoch. The entity-side inverted indexes are untouched — appends
    /// add ratings, not entities — but any cached rating-group
    /// materialization is stale after this returns; callers invalidate
    /// their `GroupCache`/`DistanceCache` via the new epoch.
    pub fn append_ratings(
        &mut self,
        drafts: &[crate::ratings::RatingDraft],
    ) -> Result<(), crate::error::StoreError> {
        self.check_ratings(drafts)?;
        self.ratings
            .append_drafts(drafts, self.reviewers.len(), self.items.len());
        self.epoch += 1;
        Ok(())
    }

    /// The reviewer table `U`.
    pub fn reviewers(&self) -> &EntityTable {
        &self.reviewers
    }

    /// The item table `I`.
    pub fn items(&self) -> &EntityTable {
        &self.items
    }

    /// The rating table `R`.
    pub fn ratings(&self) -> &RatingTable {
        &self.ratings
    }

    /// The entity table for `entity`.
    pub fn table(&self, entity: Entity) -> &EntityTable {
        match entity {
            Entity::Reviewer => &self.reviewers,
            Entity::Item => &self.items,
        }
    }

    /// The schema for `entity`.
    pub fn schema(&self, entity: Entity) -> &Schema {
        self.table(entity).schema()
    }

    /// The compressed posting index for `entity`.
    #[allow(clippy::should_implement_trait)] // domain term, not ops::Index
    pub fn index(&self, entity: Entity) -> &CompressedIndex {
        match entity {
            Entity::Reviewer => &self.reviewer_index,
            Entity::Item => &self.item_index,
        }
    }

    /// Index-layer statistics: container census and bytes of both entity
    /// sides merged, plus the lifetime intersection/routing counters —
    /// what the service's per-snapshot metrics line renders.
    pub fn index_stats(&self) -> IndexStats {
        let c = self.reviewer_index.stats().merge(&self.item_index.stats());
        IndexStats {
            array_containers: c.arrays,
            bitmap_containers: c.bitmaps,
            run_containers: c.runs,
            resident_bytes: c.resident_bytes,
            flat_bytes: c.flat_bytes,
            intersections: self.counters.intersections.load(Ordering::Relaxed),
            route_walk: self.counters.route_walk.load(Ordering::Relaxed),
            route_probe: self.counters.route_probe.load(Ordering::Relaxed),
        }
    }

    /// Table-2-style statistics.
    pub fn stats(&self) -> DbStats {
        let max_values = Entity::Reviewer
            .into_iter_with(Entity::Item)
            .flat_map(|e| {
                let t = self.table(e);
                t.schema()
                    .attr_ids()
                    .map(|a| t.dictionary(a).len())
                    .collect::<Vec<_>>()
            })
            .max()
            .unwrap_or(0);
        DbStats {
            attr_count: self.reviewers.schema().len() + self.items.schema().len(),
            max_values,
            dim_count: self.ratings.dim_count(),
            rating_count: self.ratings.len(),
            reviewer_count: self.reviewers.len(),
            item_count: self.items.len(),
        }
    }

    /// Selects the entity group matching the `entity`-side predicates of
    /// `query` by container intersection. No predicates on that side ⇒
    /// the full table.
    pub fn select_group(&self, entity: Entity, query: &SelectionQuery) -> EntityGroup {
        let table = self.table(entity);
        let index = self.index(entity);
        let preds: Vec<(AttrId, ValueId)> =
            query.preds_of(entity).map(|p| (p.attr, p.value)).collect();
        if !preds.is_empty() {
            self.counters.intersections.fetch_add(1, Ordering::Relaxed);
        }
        let members = index.intersect(&preds).into_bitset(table.len());
        EntityGroup::new(entity, members)
    }

    /// Materializes the rating group for `query`: all records whose
    /// reviewer and item match the respective sides. `seed` fixes the phase
    /// order (see [`RatingGroup::new`]).
    pub fn rating_group(&self, query: &SelectionQuery, seed: u64) -> RatingGroup {
        RatingGroup::new(self.collect_group_records(query), seed)
    }

    /// Like [`rating_group`](Self::rating_group), but the group additionally
    /// carries pre-gathered entity-row columns for the scan kernels (see
    /// [`RatingGroup::entity_rows`]). Record order is byte-identical to
    /// [`rating_group`](Self::rating_group) for the same `(query, seed)`.
    pub fn scan_group(&self, query: &SelectionQuery, seed: u64) -> RatingGroup {
        RatingGroup::from_columns(&self.collect_group_columns(query), seed)
    }

    /// Like [`scan_group`](Self::scan_group), but looks the gather columns
    /// up in (and populates) a shared [`GroupCache`] first. The phase order
    /// still comes from `seed`, applied after the lookup, so for any given
    /// `(query, seed)` the returned group is byte-identical to the uncached
    /// path — the cache stores only the walk-order gather columns, which
    /// are a pure function of the query; each session permutes them with
    /// its own seed.
    pub fn group_for_query_cached(
        &self,
        query: &SelectionQuery,
        seed: u64,
        cache: &GroupCache,
    ) -> RatingGroup {
        let columns =
            cache.get_or_insert_with(query, self.epoch(), || self.collect_group_columns(query));
        RatingGroup::from_columns(&columns, seed)
    }

    /// The record ids matched by `query`, in **canonical ascending order**
    /// (the pre-shuffle order [`rating_group`](Self::rating_group) starts
    /// from). Convenience wrapper over
    /// [`collect_group_records_routed`](Self::collect_group_records_routed)
    /// that drops the route.
    pub fn collect_group_records(&self, query: &SelectionQuery) -> Vec<RecordId> {
        self.collect_group_records_routed(query, None).0
    }

    /// Like [`collect_group_records`](Self::collect_group_records), but
    /// reports which [`GroupRoute`] materialized the group, and lets tests
    /// and benches pin the route with `forced`.
    ///
    /// Routing: with no predicates the group is all records
    /// ([`GroupRoute::Full`]). Otherwise exact cardinalities from the
    /// entity selections price two plans. The **walk**
    /// ([`GroupRoute::Walk`]) enumerates the cheaper constrained side's
    /// adjacency lists filtered by the other side's bitset, then sorts —
    /// unbeatable when the selection is tight. The **probe**
    /// ([`GroupRoute::Probe`]) runs the branch-free `filter_rows` kernel
    /// over the full rating reviewer/item columns against the sides'
    /// bitmap words — O(|R|) with no sort, since record ids fall out
    /// ascending. The probe wins once `10 × walk_cost > |R| × sides`
    /// (`sides` = number of constrained entity sides): per record the walk
    /// pays a pointer-chasing adjacency touch, a cross-side bitset
    /// rejection test, and its share of the final `sort_unstable`, an
    /// order of magnitude more than the probe's sequential word lookup —
    /// of which the probe does one per constrained side (calibrated by the
    /// `index_path` bench).
    ///
    /// Byte-identity: both routes produce canonical ascending record-id
    /// order — a pure function of the query — so either result can seed
    /// the shared [`GroupCache`]. Pinned by the `index_equivalence`
    /// proptests.
    pub fn collect_group_records_routed(
        &self,
        query: &SelectionQuery,
        forced: Option<GroupRoute>,
    ) -> (Vec<RecordId>, GroupRoute) {
        let has_reviewer_preds = query.preds_of(Entity::Reviewer).next().is_some();
        let has_item_preds = query.preds_of(Entity::Item).next().is_some();

        if !has_reviewer_preds && !has_item_preds {
            return ((0..self.ratings.len() as u32).collect(), GroupRoute::Full);
        }

        let g_u = self.select_group(Entity::Reviewer, query);
        let g_i = self.select_group(Entity::Item, query);

        // Walk cost: records the walk would enumerate from the cheaper
        // constrained side, priced as exact selection size (one popcount
        // over the intersection words) × mean adjacency degree. Summing the
        // true per-member degrees instead would touch every selected
        // member's offset pair — for a dense selection that costs as much
        // as the walk it is trying to avoid.
        let price = |members: usize, entities: usize| -> usize {
            (members * self.ratings.len()) / entities.max(1)
        };
        let reviewer_cost: usize = if has_reviewer_preds {
            price(g_u.members().len(), self.reviewers.len())
        } else {
            usize::MAX
        };
        let item_cost: usize = if has_item_preds {
            price(g_i.members().len(), self.items.len())
        } else {
            usize::MAX
        };
        let walk_cost = reviewer_cost.min(item_cost);

        let sides = usize::from(has_reviewer_preds) + usize::from(has_item_preds);
        let probe = match forced {
            Some(route) => route == GroupRoute::Probe,
            None => walk_cost.saturating_mul(10) > self.ratings.len() * sides,
        };
        if probe {
            self.counters.route_probe.fetch_add(1, Ordering::Relaxed);
            let reviewer_words = has_reviewer_preds.then(|| g_u.members().words());
            let item_words = has_item_preds.then(|| g_i.members().words());
            let mut records: Vec<RecordId> = Vec::new();
            kernels::filter_rows(
                kernels::active(),
                self.ratings.reviewer_column(),
                self.ratings.item_column(),
                reviewer_words,
                item_words,
                &mut records,
            );
            return (records, GroupRoute::Probe);
        }

        self.counters.route_walk.fetch_add(1, Ordering::Relaxed);
        // The walk's raw emission order depends on which entity side drives
        // it, so the result is sorted before returning: ascending record-id
        // order is a pure function of the query, is preserved by subset
        // filtering ([`GroupColumns::derive_refinement`] relies on this),
        // and keeps [`GroupCache`] entries order-stable no matter which
        // side happened to be cheaper when the entry was built.
        let mut records: Vec<RecordId> = Vec::new();
        if reviewer_cost <= item_cost {
            for r in g_u.members().iter() {
                for &rec in self.ratings.records_of_reviewer(r) {
                    if g_i.contains(self.ratings.item_of(rec)) {
                        records.push(rec);
                    }
                }
            }
        } else {
            for i in g_i.members().iter() {
                for &rec in self.ratings.records_of_item(i) {
                    if g_u.contains(self.ratings.reviewer_of(rec)) {
                        records.push(rec);
                    }
                }
            }
        }
        records.sort_unstable();
        (records, GroupRoute::Walk)
    }

    /// Gather columns for the refinement `parent-query ∪ {pred}`, derived
    /// by filtering `parent`'s already-gathered columns against `pred`'s
    /// posting list — no adjacency walk, no re-gather (see
    /// [`GroupColumns::derive_refinement`]).
    ///
    /// Byte-identity contract: the result equals
    /// [`collect_group_columns`](Self::collect_group_columns) on the
    /// refined query bit-for-bit, because both are in canonical ascending
    /// record order. `parent` must be the gather columns of a query that
    /// does **not** already constrain records on `pred` (i.e. the
    /// refinement adds `pred` as a new conjunct).
    pub fn derive_refinement_columns(
        &self,
        parent: &GroupColumns,
        pred: &AttrValue,
    ) -> GroupColumns {
        parent.derive_refinement(pred.entity, pred, self.index(pred.entity))
    }

    /// Gather columns for the refinement `ancestor-query ∪ preds`, derived
    /// by one probe pass over `ancestor`'s already-gathered columns against
    /// the added predicates' container intersections (one word mask per
    /// constrained side) — the generalization of
    /// [`derive_refinement_columns`](Self::derive_refinement_columns) from
    /// "one predicate from the direct parent" to "any predicate set from
    /// any cached ancestor". No adjacency walk, no re-gather.
    ///
    /// Byte-identity contract: the result equals
    /// [`collect_group_columns`](Self::collect_group_columns) on the
    /// refined query bit-for-bit. `ancestor` must be the gather columns of
    /// a query none of whose conjuncts is in `preds` (the refinement adds
    /// every predicate as a new conjunct).
    pub fn derive_refinement_columns_multi(
        &self,
        ancestor: &GroupColumns,
        preds: &[AttrValue],
    ) -> GroupColumns {
        let mut reviewer_preds: Vec<(AttrId, ValueId)> = Vec::new();
        let mut item_preds: Vec<(AttrId, ValueId)> = Vec::new();
        for p in preds {
            match p.entity {
                Entity::Reviewer => reviewer_preds.push((p.attr, p.value)),
                Entity::Item => item_preds.push((p.attr, p.value)),
            }
        }
        let reviewer_words = self
            .reviewer_index
            .intersect(&reviewer_preds)
            .into_words(self.reviewers.len());
        let item_words = self
            .item_index
            .intersect(&item_preds)
            .into_words(self.items.len());
        ancestor.derive_refinement_multi(reviewer_words.as_deref(), item_words.as_deref())
    }

    /// Cheap index-only upper bound on the size of `query`'s entity
    /// selection: the minimum **exact** container cardinality over the
    /// query's predicates (`usize::MAX` when the query has no predicates
    /// and nothing constrains the group). A bound of zero proves the
    /// rating group is empty without materializing anything — the
    /// recommendation builder uses this to skip unsatisfiable candidates
    /// before any group work happens.
    pub fn index_cardinality_bound(&self, query: &SelectionQuery) -> usize {
        query
            .preds()
            .iter()
            .map(|p| self.index(p.entity).cardinality(p.attr, p.value))
            .min()
            .unwrap_or(usize::MAX)
    }

    /// The gather columns for `query`: the walk-order record list plus both
    /// entity-row columns resolved once ([`GroupColumns::gather`]). This is
    /// what the [`GroupCache`] stores and what
    /// [`scan_group`](Self::scan_group) shuffles per session.
    pub fn collect_group_columns(&self, query: &SelectionQuery) -> GroupColumns {
        GroupColumns::gather(&self.ratings, self.collect_group_records(query))
    }

    /// Like [`collect_group_columns`](Self::collect_group_columns), but
    /// reports which [`GroupRoute`] materialized the records — the hook
    /// the step executor uses to attribute walked vs probed groups in
    /// [`StepStats`-level counters](GroupRoute).
    pub fn collect_group_columns_routed(
        &self,
        query: &SelectionQuery,
    ) -> (GroupColumns, GroupRoute) {
        let (records, route) = self.collect_group_records_routed(query, None);
        (GroupColumns::gather(&self.ratings, records), route)
    }

    /// Human-readable rendering of one predicate, e.g. `item.city = NYC`.
    pub fn describe_pred(&self, p: &AttrValue) -> String {
        let table = self.table(p.entity);
        let attr = table.schema().attr(p.attr);
        let value = table.dictionary(p.attr).value(p.value);
        format!("{}.{} = {}", p.entity, attr.name, value)
    }

    /// Human-readable rendering of a query, e.g.
    /// `reviewer.age_group = young AND item.city = NYC` (or `*` when empty).
    pub fn describe_query(&self, q: &SelectionQuery) -> String {
        if q.is_empty() {
            return "*".to_owned();
        }
        q.preds()
            .iter()
            .map(|p| self.describe_pred(p))
            .collect::<Vec<_>>()
            .join(" AND ")
    }

    /// Resolves a named predicate to an [`AttrValue`], if both the
    /// attribute and the value exist.
    pub fn pred(&self, entity: Entity, attr_name: &str, value: &Value) -> Option<AttrValue> {
        let table = self.table(entity);
        let attr = table.schema().attr_by_name(attr_name)?;
        let value = table.dictionary(attr).code(value)?;
        Some(AttrValue::new(entity, attr, value))
    }

    /// All values of an attribute (id order).
    pub fn values_of(&self, entity: Entity, attr: AttrId) -> Vec<ValueId> {
        (0..self.table(entity).dictionary(attr).len() as u32)
            .map(ValueId)
            .collect()
    }

    /// Per-attribute summaries for one entity — what the paper's UI needs
    /// to populate its drop-down menus (Figure 5): each attribute's name,
    /// whether it is multi-valued, and its values with row counts, most
    /// frequent first.
    pub fn attribute_summaries(&self, entity: Entity) -> Vec<AttributeSummary> {
        let table = self.table(entity);
        let index = self.index(entity);
        table
            .schema()
            .iter()
            .map(|(attr, def)| {
                let mut values: Vec<(Value, usize)> = table
                    .dictionary(attr)
                    .iter()
                    .map(|(id, v)| (v.clone(), index.cardinality(attr, id)))
                    .collect();
                values.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
                AttributeSummary {
                    attr,
                    name: def.name.clone(),
                    multi_valued: def.multi_valued,
                    values,
                }
            })
            .collect()
    }
}

/// Drop-down-ready description of one attribute (see
/// [`SubjectiveDb::attribute_summaries`]).
#[derive(Debug, Clone)]
pub struct AttributeSummary {
    /// The attribute id.
    pub attr: AttrId,
    /// Attribute name.
    pub name: String,
    /// Whether rows may carry value sets.
    pub multi_valued: bool,
    /// `(value, row count)` pairs, most frequent first.
    pub values: Vec<(Value, usize)>,
}

/// Small helper: iterate two entities (used by [`SubjectiveDb::stats`]).
trait EntityIterExt {
    fn into_iter_with(self, other: Entity) -> std::array::IntoIter<Entity, 2>;
}

impl EntityIterExt for Entity {
    fn into_iter_with(self, other: Entity) -> std::array::IntoIter<Entity, 2> {
        [self, other].into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratings::RatingTableBuilder;
    use crate::table::{Cell, EntityTableBuilder};

    /// Builds the Figure 2 database: 4 reviewers, 4 restaurants, ratings.
    pub(crate) fn figure2_db() -> SubjectiveDb {
        let mut us = Schema::new();
        us.add("gender", false);
        us.add("age_group", false);
        us.add("occupation", false);
        let mut ub = EntityTableBuilder::new(us);
        ub.push_row(vec!["F".into(), "Middle Aged".into(), "Lawyer".into()]);
        ub.push_row(vec!["M".into(), "Young".into(), "Artist".into()]);
        ub.push_row(vec!["F".into(), "Young".into(), "Student".into()]);
        ub.push_row(vec!["M".into(), "Middle Aged".into(), "Teacher".into()]);

        let mut is = Schema::new();
        is.add("cuisine", true);
        is.add("state", false);
        is.add("city", false);
        let mut ib = EntityTableBuilder::new(is);
        ib.push_row(vec![
            Cell::Many(vec![Value::str("Burgers"), Value::str("Barbeque")]),
            "North Carolina".into(),
            "Charlotte".into(),
        ]);
        ib.push_row(vec![
            Cell::Many(vec![Value::str("Japanese"), Value::str("Sushi")]),
            "Texas".into(),
            "Austin".into(),
        ]);
        ib.push_row(vec![
            Cell::Many(vec![Value::str("Mexican")]),
            "Michigan".into(),
            "Detroit".into(),
        ]);
        ib.push_row(vec![
            Cell::Many(vec![Value::str("Pizza"), Value::str("Italian")]),
            "New York".into(),
            "NYC".into(),
        ]);

        let dims = vec![
            "overall".to_owned(),
            "food".to_owned(),
            "service".to_owned(),
            "ambiance".to_owned(),
        ];
        let mut rb = RatingTableBuilder::new(dims, 5);
        rb.push(0, 3, &[4, 3, 5, 4]);
        rb.push(1, 0, &[4, 4, 3, 5]);
        rb.push(1, 1, &[3, 4, 3, 3]);
        rb.push(2, 3, &[5, 5, 5, 4]);
        SubjectiveDb::new(ub.build(), ib.build(), rb.build(4, 4))
    }

    #[test]
    fn stats_match_construction() {
        let db = figure2_db();
        let s = db.stats();
        assert_eq!(s.attr_count, 6);
        assert_eq!(s.dim_count, 4);
        assert_eq!(s.rating_count, 4);
        assert_eq!(s.reviewer_count, 4);
        assert_eq!(s.item_count, 4);
        assert!(s.max_values >= 4);
    }

    #[test]
    fn empty_query_selects_everything() {
        let db = figure2_db();
        let q = SelectionQuery::all();
        assert_eq!(db.select_group(Entity::Reviewer, &q).len(), 4);
        assert_eq!(db.select_group(Entity::Item, &q).len(), 4);
        assert_eq!(db.rating_group(&q, 0).len(), 4);
    }

    #[test]
    fn reviewer_side_selection() {
        let db = figure2_db();
        let young = db
            .pred(Entity::Reviewer, "age_group", &Value::str("Young"))
            .unwrap();
        let q = SelectionQuery::from_preds(vec![young]);
        let g = db.select_group(Entity::Reviewer, &q);
        assert_eq!(g.rows(), vec![1, 2]);
        // Records of reviewers 1 and 2: ids 1, 2, 3.
        let mut recs = db.rating_group(&q, 0).records().to_vec();
        recs.sort_unstable();
        assert_eq!(recs, vec![1, 2, 3]);
    }

    #[test]
    fn conjunctive_cross_entity_selection() {
        let db = figure2_db();
        let young = db
            .pred(Entity::Reviewer, "age_group", &Value::str("Young"))
            .unwrap();
        let nyc = db.pred(Entity::Item, "city", &Value::str("NYC")).unwrap();
        let q = SelectionQuery::from_preds(vec![young, nyc]);
        let recs = db.rating_group(&q, 0);
        // Only record 3 (reviewer 2 = young, item 3 = NYC).
        assert_eq!(recs.records(), &[3]);
    }

    #[test]
    fn multi_valued_predicate() {
        let db = figure2_db();
        let sushi = db
            .pred(Entity::Item, "cuisine", &Value::str("Sushi"))
            .unwrap();
        let q = SelectionQuery::from_preds(vec![sushi]);
        let g = db.select_group(Entity::Item, &q);
        assert_eq!(g.rows(), vec![1]);
    }

    #[test]
    fn contradictory_predicates_select_nothing() {
        let db = figure2_db();
        let f = db
            .pred(Entity::Reviewer, "gender", &Value::str("F"))
            .unwrap();
        let m = db
            .pred(Entity::Reviewer, "gender", &Value::str("M"))
            .unwrap();
        let q = SelectionQuery::from_preds(vec![f, m]);
        assert!(db.select_group(Entity::Reviewer, &q).is_empty());
        assert!(db.rating_group(&q, 0).is_empty());
    }

    #[test]
    fn describe_query_renders_names() {
        let db = figure2_db();
        let young = db
            .pred(Entity::Reviewer, "age_group", &Value::str("Young"))
            .unwrap();
        let nyc = db.pred(Entity::Item, "city", &Value::str("NYC")).unwrap();
        let q = SelectionQuery::from_preds(vec![young, nyc]);
        let s = db.describe_query(&q);
        assert!(s.contains("reviewer.age_group = Young"), "{s}");
        assert!(s.contains("item.city = NYC"), "{s}");
        assert_eq!(db.describe_query(&SelectionQuery::all()), "*");
    }

    #[test]
    fn pred_resolution_failures() {
        let db = figure2_db();
        assert!(db
            .pred(Entity::Reviewer, "nope", &Value::str("x"))
            .is_none());
        assert!(db
            .pred(Entity::Reviewer, "gender", &Value::str("X"))
            .is_none());
    }

    #[test]
    fn attribute_summaries_are_dropdown_ready() {
        let db = figure2_db();
        let summaries = db.attribute_summaries(Entity::Reviewer);
        assert_eq!(summaries.len(), 3);
        let gender = summaries.iter().find(|s| s.name == "gender").unwrap();
        assert!(!gender.multi_valued);
        assert_eq!(gender.values.len(), 2);
        // Counts are correct and sorted descending (F and M both 2 here).
        assert!(gender.values.iter().all(|(_, n)| *n == 2));

        let item_summaries = db.attribute_summaries(Entity::Item);
        let cuisine = item_summaries.iter().find(|s| s.name == "cuisine").unwrap();
        assert!(cuisine.multi_valued);
        let total: usize = cuisine.values.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 7, "each carried value counts once per row");
        for w in cuisine.values.windows(2) {
            assert!(w[0].1 >= w[1].1, "most frequent first");
        }
    }

    #[test]
    fn rating_group_is_seeded_permutation() {
        let db = figure2_db();
        let q = SelectionQuery::all();
        let a = db.rating_group(&q, 5);
        let b = db.rating_group(&q, 5);
        assert_eq!(a.records(), b.records());
    }

    #[test]
    fn collect_group_records_is_ascending_from_either_side() {
        let db = figure2_db();
        let young = db
            .pred(Entity::Reviewer, "age_group", &Value::str("Young"))
            .unwrap();
        let f = db
            .pred(Entity::Reviewer, "gender", &Value::str("F"))
            .unwrap();
        let nyc = db.pred(Entity::Item, "city", &Value::str("NYC")).unwrap();
        let burgers = db
            .pred(Entity::Item, "cuisine", &Value::str("Burgers"))
            .unwrap();
        // Queries whose walk is driven from the reviewer side, the item
        // side, and both: the emitted order must always be ascending.
        for q in [
            SelectionQuery::all(),
            SelectionQuery::from_preds(vec![young]),
            SelectionQuery::from_preds(vec![nyc]),
            SelectionQuery::from_preds(vec![burgers]),
            SelectionQuery::from_preds(vec![f, burgers]),
            SelectionQuery::from_preds(vec![young, nyc]),
        ] {
            let recs = db.collect_group_records(&q);
            assert!(recs.windows(2).all(|w| w[0] < w[1]), "{q:?}: {recs:?}");
        }
    }

    #[test]
    fn derive_refinement_matches_full_walk() {
        let db = figure2_db();
        let young = db
            .pred(Entity::Reviewer, "age_group", &Value::str("Young"))
            .unwrap();
        let f = db
            .pred(Entity::Reviewer, "gender", &Value::str("F"))
            .unwrap();
        let nyc = db.pred(Entity::Item, "city", &Value::str("NYC")).unwrap();
        let sushi = db
            .pred(Entity::Item, "cuisine", &Value::str("Sushi"))
            .unwrap();
        let parents = [
            SelectionQuery::all(),
            SelectionQuery::from_preds(vec![young]),
            SelectionQuery::from_preds(vec![nyc]),
            SelectionQuery::from_preds(vec![young, nyc]),
        ];
        for parent in &parents {
            let parent_cols = db.collect_group_columns(parent);
            for pred in [young, f, nyc, sushi] {
                if parent.contains(&pred) {
                    continue;
                }
                let child = parent.with_added(pred);
                let derived = db.derive_refinement_columns(&parent_cols, &pred);
                let walked = db.collect_group_columns(&child);
                assert_eq!(derived, walked, "parent {parent:?} + {pred:?}");
            }
        }
    }

    #[test]
    fn probe_route_matches_walk_route() {
        let db = figure2_db();
        let young = db
            .pred(Entity::Reviewer, "age_group", &Value::str("Young"))
            .unwrap();
        let f = db
            .pred(Entity::Reviewer, "gender", &Value::str("F"))
            .unwrap();
        let nyc = db.pred(Entity::Item, "city", &Value::str("NYC")).unwrap();
        let burgers = db
            .pred(Entity::Item, "cuisine", &Value::str("Burgers"))
            .unwrap();
        for q in [
            SelectionQuery::from_preds(vec![young]),
            SelectionQuery::from_preds(vec![nyc]),
            SelectionQuery::from_preds(vec![f, burgers]),
            SelectionQuery::from_preds(vec![young, nyc]),
            SelectionQuery::from_preds(vec![young, f]),
        ] {
            let (walked, wr) = db.collect_group_records_routed(&q, Some(GroupRoute::Walk));
            let (probed, pr) = db.collect_group_records_routed(&q, Some(GroupRoute::Probe));
            assert_eq!(wr, GroupRoute::Walk);
            assert_eq!(pr, GroupRoute::Probe);
            assert_eq!(walked, probed, "{q:?}");
        }
        let stats = db.index_stats();
        assert!(stats.route_walk >= 5 && stats.route_probe >= 5);
        assert!(stats.intersections > 0);
    }

    #[test]
    fn multi_pred_derivation_matches_child_walk() {
        let db = figure2_db();
        let young = db
            .pred(Entity::Reviewer, "age_group", &Value::str("Young"))
            .unwrap();
        let m = db
            .pred(Entity::Reviewer, "gender", &Value::str("M"))
            .unwrap();
        let nyc = db.pred(Entity::Item, "city", &Value::str("NYC")).unwrap();
        let sushi = db
            .pred(Entity::Item, "cuisine", &Value::str("Sushi"))
            .unwrap();
        let ancestors = [SelectionQuery::all(), SelectionQuery::from_preds(vec![m])];
        let additions: [&[AttrValue]; 4] =
            [&[young, nyc], &[nyc, sushi], &[young], &[young, nyc, sushi]];
        for ancestor in &ancestors {
            let cols = db.collect_group_columns(ancestor);
            for preds in additions {
                if preds.iter().any(|p| ancestor.contains(p)) {
                    continue;
                }
                let mut child = ancestor.clone();
                for p in preds {
                    child = child.with_added(*p);
                }
                let derived = db.derive_refinement_columns_multi(&cols, preds);
                let walked = db.collect_group_columns(&child);
                assert_eq!(derived, walked, "{ancestor:?} + {preds:?}");
            }
        }
    }

    #[test]
    fn index_cardinality_bound_detects_empty_postings() {
        let db = figure2_db();
        let f = db
            .pred(Entity::Reviewer, "gender", &Value::str("F"))
            .unwrap();
        // A value id beyond the dictionary has an empty posting list.
        let bogus = AttrValue::new(Entity::Item, AttrId(2), ValueId(99));
        assert_eq!(
            db.index_cardinality_bound(&SelectionQuery::all()),
            usize::MAX
        );
        assert!(db.index_cardinality_bound(&SelectionQuery::from_preds(vec![f])) >= 2);
        assert_eq!(
            db.index_cardinality_bound(&SelectionQuery::from_preds(vec![f, bogus])),
            0
        );
    }

    #[test]
    fn scan_group_matches_rating_group() {
        let db = figure2_db();
        let young = db
            .pred(Entity::Reviewer, "age_group", &Value::str("Young"))
            .unwrap();
        for query in [
            SelectionQuery::all(),
            SelectionQuery::from_preds(vec![young]),
        ] {
            for seed in [0u64, 5, 99] {
                let plain = db.rating_group(&query, seed);
                let columnar = db.scan_group(&query, seed);
                assert_eq!(plain.records(), columnar.records());
                let rev = columnar.entity_rows(Entity::Reviewer).unwrap();
                let item = columnar.entity_rows(Entity::Item).unwrap();
                for (i, &rec) in columnar.records().iter().enumerate() {
                    assert_eq!(rev[i], db.ratings().reviewer_of(rec));
                    assert_eq!(item[i], db.ratings().item_of(rec));
                }
            }
        }
    }
}
