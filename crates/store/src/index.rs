//! Inverted indexes over entity tables.
//!
//! For every (attribute, value) pair the index stores the sorted list of
//! rows carrying that value, so a conjunctive selection touches only the
//! posting lists of its predicates instead of scanning the table.

use crate::schema::AttrId;
use crate::table::EntityTable;
use crate::value::ValueId;

/// Inverted index of one entity table: `postings[attr][value] = sorted rows`.
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    postings: Vec<Vec<Vec<u32>>>,
    rows: usize,
}

impl InvertedIndex {
    /// Builds the index by one pass over every column.
    pub fn build(table: &EntityTable) -> Self {
        let rows = table.len();
        let mut postings: Vec<Vec<Vec<u32>>> = table
            .schema()
            .attr_ids()
            .map(|attr| vec![Vec::new(); table.dictionary(attr).len()])
            .collect();
        for attr in table.schema().attr_ids() {
            let lists = &mut postings[attr.index()];
            let col = table.column(attr);
            for row in 0..rows as u32 {
                for &v in col.values(row) {
                    // A multi-valued cell may repeat a value; index the row
                    // once so cardinalities are exact (they feed planner
                    // cost decisions). Rows arrive ascending, so a dupe can
                    // only be the list's current tail.
                    let list = &mut lists[v.index()];
                    if list.last() != Some(&row) {
                        list.push(row);
                    }
                }
            }
        }
        Self { postings, rows }
    }

    /// Reassembles an index from its raw posting lists (the snapshot-load
    /// path, which persists postings so load never re-scans the table).
    /// Validates that every posting is a sorted list of in-range rows, so a
    /// damaged file cannot smuggle dangling row ids into selections.
    /// Duplicates are dropped: snapshots written before `build` deduped
    /// multi-valued repeats may still carry them, and cardinalities must
    /// be exact (they feed planner cost decisions).
    pub fn from_parts(
        mut postings: Vec<Vec<Vec<u32>>>,
        rows: usize,
    ) -> Result<Self, crate::error::StoreError> {
        use crate::error::StoreError;
        for (attr, lists) in postings.iter_mut().enumerate() {
            for (value, list) in lists.iter_mut().enumerate() {
                if list.windows(2).any(|w| w[0] > w[1]) {
                    return Err(StoreError::invalid(format!(
                        "posting list attr {attr} value {value} is not sorted"
                    )));
                }
                if list.last().is_some_and(|&r| r as usize >= rows) {
                    return Err(StoreError::invalid(format!(
                        "posting list attr {attr} value {value} references a row past {rows}"
                    )));
                }
                list.dedup();
            }
        }
        Ok(Self { postings, rows })
    }

    /// The raw posting lists, `[attr][value] = sorted rows`. Exposed for
    /// columnar serialization.
    pub fn posting_lists(&self) -> &[Vec<Vec<u32>>] {
        &self.postings
    }

    /// Number of rows in the indexed table.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The sorted rows carrying `value` for `attr`. Out-of-range values
    /// yield an empty slice (a predicate on an unseen value selects
    /// nothing).
    pub fn postings(&self, attr: AttrId, value: ValueId) -> &[u32] {
        self.postings
            .get(attr.index())
            .and_then(|lists| lists.get(value.index()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Selectivity of a predicate: fraction of rows matched.
    pub fn selectivity(&self, attr: AttrId, value: ValueId) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        self.postings(attr, value).len() as f64 / self.rows as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::table::{Cell, EntityTableBuilder};
    use crate::value::Value;

    fn table() -> EntityTable {
        let mut schema = Schema::new();
        schema.add("city", false);
        schema.add("cuisine", true);
        let mut b = EntityTableBuilder::new(schema);
        b.push_row(vec![
            "NYC".into(),
            Cell::Many(vec![Value::str("Pizza"), Value::str("Italian")]),
        ]);
        b.push_row(vec!["NYC".into(), Cell::Many(vec![Value::str("Sushi")])]);
        b.push_row(vec!["Austin".into(), Cell::Many(vec![Value::str("Pizza")])]);
        b.build()
    }

    #[test]
    fn postings_per_value() {
        let t = table();
        let idx = InvertedIndex::build(&t);
        let city = t.schema().attr_by_name("city").unwrap();
        let nyc = t.dictionary(city).code(&Value::str("NYC")).unwrap();
        let austin = t.dictionary(city).code(&Value::str("Austin")).unwrap();
        assert_eq!(idx.postings(city, nyc), &[0, 1]);
        assert_eq!(idx.postings(city, austin), &[2]);
    }

    #[test]
    fn multi_valued_postings() {
        let t = table();
        let idx = InvertedIndex::build(&t);
        let cuisine = t.schema().attr_by_name("cuisine").unwrap();
        let pizza = t.dictionary(cuisine).code(&Value::str("Pizza")).unwrap();
        assert_eq!(idx.postings(cuisine, pizza), &[0, 2]);
    }

    #[test]
    fn repeated_multi_value_indexes_row_once() {
        let mut schema = Schema::new();
        schema.add("cuisine", true);
        let mut b = EntityTableBuilder::new(schema);
        b.push_row(vec![Cell::Many(vec![
            Value::str("Pizza"),
            Value::str("Pizza"),
        ])]);
        b.push_row(vec![Cell::Many(vec![Value::str("Pizza")])]);
        let t = b.build();
        let idx = InvertedIndex::build(&t);
        let cuisine = t.schema().attr_by_name("cuisine").unwrap();
        let pizza = t.dictionary(cuisine).code(&Value::str("Pizza")).unwrap();
        // Exact cardinality: row 0 appears once despite the repeated cell.
        assert_eq!(idx.postings(cuisine, pizza), &[0, 1]);
    }

    #[test]
    fn from_parts_drops_duplicates() {
        let idx = InvertedIndex::from_parts(vec![vec![vec![0, 0, 2, 2, 3]]], 4).unwrap();
        assert_eq!(idx.postings(AttrId(0), ValueId(0)), &[0, 2, 3]);
    }

    #[test]
    fn unseen_value_is_empty() {
        let t = table();
        let idx = InvertedIndex::build(&t);
        let city = t.schema().attr_by_name("city").unwrap();
        assert_eq!(idx.postings(city, ValueId(99)), &[] as &[u32]);
    }

    #[test]
    fn selectivity() {
        let t = table();
        let idx = InvertedIndex::build(&t);
        let city = t.schema().attr_by_name("city").unwrap();
        let nyc = t.dictionary(city).code(&Value::str("NYC")).unwrap();
        assert!((idx.selectivity(city, nyc) - 2.0 / 3.0).abs() < 1e-12);
    }
}
