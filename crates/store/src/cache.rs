//! Cross-session cache of materialized rating-group gather columns.
//!
//! Materializing a rating group is the dominant per-step cost on large
//! databases (an adjacency walk over every matching reviewer or item).
//! Different exploration sessions frequently visit the same queries — the
//! recommendation builder proposes the same drill-downs to everyone — so
//! [`GroupCache`] shares the walk result across sessions.
//!
//! What is cached is the **pre-shuffle [`GroupColumns`]** — the record list
//! in deterministic walk order plus both entity-row gather columns
//! ([`SubjectiveDb::collect_group_columns`]) — *not* the shuffled
//! [`RatingGroup`]: the phase-order shuffle depends on the per-step seed,
//! so caching after the shuffle would either leak one session's phase order
//! into another or break seed determinism. Callers permute an index vector
//! with their own seed and gather from the shared columns
//! ([`RatingGroup::from_columns`]), making the cached path byte-identical
//! to the uncached one while also sharing the `reviewer_of`/`item_of`
//! gather that the scan kernels consume.
//!
//! The map is split into power-of-two **shards**, keyed by the query's
//! 64-bit fingerprint, each with its own lock and its own slice of the byte
//! budget: concurrent sessions hitting different queries stop serializing
//! on one global mutex. Hit/miss/eviction counters are cache-level atomics,
//! so `stats` aggregates without stopping the world.
//!
//! Eviction is least-recently-used by resident bytes *per shard*: each
//! entry is costed at its gathered-column size (records plus both row
//! columns, 12 bytes per record) plus a fixed per-entry overhead, and
//! inserts evict the shard's least recently touched entries until its
//! budget slice is respected again.
//!
//! The epoch protocol is preserved per shard: each shard records the
//! database epoch its entries were built against, [`bump_epoch`] eagerly
//! clears every shard, and a caller from a newer epoch lazily clears the
//! one shard it touches. A caller therefore never receives columns built
//! against a different database version than its own.
//!
//! [`SubjectiveDb::collect_group_columns`]: crate::database::SubjectiveDb::collect_group_columns
//! [`RatingGroup`]: crate::group::RatingGroup
//! [`RatingGroup::from_columns`]: crate::group::RatingGroup::from_columns
//! [`bump_epoch`]: GroupCache::bump_epoch

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::pad::CachePadded;
use crate::predicate::SelectionQuery;
use crate::scan::GroupColumns;

/// Fixed per-entry bookkeeping cost (key, map slot, counters), added to the
/// column payload when charging an entry against the byte budget.
const ENTRY_OVERHEAD_BYTES: usize = 128;

/// Default shard count for the shared caches. Must be a power of two; eight
/// is enough that a handful of service workers rarely collide while keeping
/// the per-shard budget slices coarse.
pub const DEFAULT_CACHE_SHARDS: usize = 8;

/// Counters describing cache effectiveness; see [`GroupCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to materialize the record list.
    pub misses: u64,
    /// Entries evicted to stay within the byte budget.
    pub evictions: u64,
    /// Inserts refused residency: entries larger than the whole budget
    /// (`GroupCache`) or racing inserts that lost to an incumbent
    /// (`DistanceCache`). A high rate signals a budget that is too small
    /// for the workload's group sizes.
    pub rejected_inserts: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Bytes currently charged against the budget.
    pub resident_bytes: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when none yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    columns: Arc<GroupColumns>,
    /// Logical clock value of the most recent touch (per shard).
    last_used: u64,
    /// What this entry charges against the byte budget.
    bytes: usize,
}

struct Inner {
    map: HashMap<SelectionQuery, Entry>,
    /// Monotonic logical clock; bumped on every touch. Per-shard, which is
    /// fine: LRU only ever compares entries within one shard.
    tick: u64,
    resident_bytes: usize,
    /// Database epoch this shard's entries were materialized against. The
    /// authority for hit/insert decisions — it only moves under the shard's
    /// write lock, so the check is race-free with concurrent bumps.
    epoch: u64,
}

/// One shard, padded to its own cache line (pair): the `RwLock` word and
/// the LRU tick inside are written on every lookup, and without padding a
/// `Box<[Shard]>` would pack several shards' lock words into one line —
/// false sharing that serializes exactly the traffic sharding is meant to
/// spread (see [`CachePadded`]).
struct Shard {
    inner: CachePadded<RwLock<Inner>>,
}

impl Shard {
    fn new() -> Self {
        Self {
            inner: CachePadded::new(RwLock::new(Inner {
                map: HashMap::new(),
                tick: 0,
                resident_bytes: 0,
                epoch: 0,
            })),
        }
    }
}

/// Clears a shard when `db_epoch` is newer than what its entries were built
/// against. Counters are kept (invalidation is not an eviction).
fn sync_shard_epoch(inner: &mut Inner, db_epoch: u64) {
    if db_epoch > inner.epoch {
        inner.epoch = db_epoch;
        inner.map.clear();
        inner.resident_bytes = 0;
    }
}

/// A thread-safe sharded LRU cache of rating-group gather columns, keyed by
/// canonicalized [`SelectionQuery`] and bounded by resident bytes.
///
/// Shared across sessions behind an [`Arc`]; all methods take `&self`.
pub struct GroupCache {
    shards: Box<[Shard]>,
    /// `shards.len() - 1`; the fingerprint mask selecting a shard.
    shard_mask: u64,
    capacity_bytes: usize,
    /// Each shard's slice of the byte budget.
    shard_capacity: usize,
    // Aggregate counters, each on its own cache line: every lookup from
    // every thread bumps one of these, and packed together a hit on one
    // core would invalidate the miss counter's line on every other.
    hits: CachePadded<AtomicU64>,
    misses: CachePadded<AtomicU64>,
    evictions: CachePadded<AtomicU64>,
    rejected: CachePadded<AtomicU64>,
    /// Aggregate database epoch (max over shards), maintained with
    /// `fetch_max`; see [`bump_epoch`](Self::bump_epoch).
    epoch: CachePadded<AtomicU64>,
}

impl std::fmt::Debug for GroupCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("GroupCache")
            .field("capacity_bytes", &self.capacity_bytes)
            .field("shards", &self.shards.len())
            .field("stats", &stats)
            .finish()
    }
}

impl GroupCache {
    /// Creates a cache bounded to roughly `capacity_bytes` of column data,
    /// with [`DEFAULT_CACHE_SHARDS`] shards.
    pub fn new(capacity_bytes: usize) -> Self {
        Self::with_shards(capacity_bytes, DEFAULT_CACHE_SHARDS)
    }

    /// Creates a cache with an explicit shard count (power of two). Each
    /// shard gets `capacity_bytes / shards` of the byte budget.
    ///
    /// # Panics
    /// If `shards` is not a power of two.
    pub fn with_shards(capacity_bytes: usize, shards: usize) -> Self {
        assert!(
            shards.is_power_of_two(),
            "shard count must be a power of two"
        );
        Self {
            shards: (0..shards).map(|_| Shard::new()).collect(),
            shard_mask: (shards - 1) as u64,
            capacity_bytes,
            shard_capacity: capacity_bytes / shards,
            hits: CachePadded::new(AtomicU64::new(0)),
            misses: CachePadded::new(AtomicU64::new(0)),
            evictions: CachePadded::new(AtomicU64::new(0)),
            rejected: CachePadded::new(AtomicU64::new(0)),
            epoch: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// The configured byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// The number of shards the key space is split across.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The newest database epoch any shard's entries are valid for.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    fn shard_of(&self, query: &SelectionQuery) -> &Shard {
        &self.shards[(query.fingerprint() & self.shard_mask) as usize]
    }

    /// Invalidates every resident entry if `db_epoch` is newer than the
    /// epoch the entries were built against. Gather columns are a pure
    /// function of `(query, database contents)`, so a rating append makes
    /// every entry stale at once; dropping them wholesale is both correct
    /// and cheap relative to the append's own index rebuild. Counters are
    /// kept (invalidation is not an eviction). Returns whether the epoch
    /// advanced (racing bumps to the same epoch advance once).
    pub fn bump_epoch(&self, db_epoch: u64) -> bool {
        if self.epoch.fetch_max(db_epoch, Ordering::Relaxed) >= db_epoch {
            return false;
        }
        for shard in self.shards.iter() {
            sync_shard_epoch(&mut shard.inner.write(), db_epoch);
        }
        true
    }

    /// Returns the cached gather columns for `query`, materializing them
    /// with `materialize` on a miss. The returned [`Arc`] stays valid even
    /// if the entry is evicted while the caller holds it.
    ///
    /// `db_epoch` is the append epoch of the database the caller would
    /// materialize from. It keeps the shared map single-version: a caller
    /// from a newer epoch lazily invalidates the shard it touches (the
    /// aggregate epoch advances immediately; other shards clear eagerly on
    /// [`bump_epoch`](Self::bump_epoch) or lazily on their own next
    /// lookup), and a caller pinned to an older database version neither
    /// hits nor inserts — its columns describe superseded data, so it
    /// materializes privately (counted as a miss plus a rejected insert).
    ///
    /// `materialize` runs *outside* the shard lock, so a slow walk does not
    /// block other sessions; if two sessions miss on the same query
    /// concurrently, both materialize and one result wins.
    ///
    /// # Panics
    /// In debug builds, panics if `query` is not in canonical form (see
    /// [`SelectionQuery::canonicalize`]); such a query would dodge cache
    /// hits for its canonical twin.
    pub fn get_or_insert_with(
        &self,
        query: &SelectionQuery,
        db_epoch: u64,
        materialize: impl FnOnce() -> GroupColumns,
    ) -> Arc<GroupColumns> {
        debug_assert!(query.is_canonical(), "cache key must be canonical");
        self.epoch.fetch_max(db_epoch, Ordering::Relaxed);
        let shard = self.shard_of(query);
        {
            let mut inner = shard.inner.write();
            sync_shard_epoch(&mut inner, db_epoch);
            inner.tick += 1;
            let tick = inner.tick;
            if db_epoch == inner.epoch {
                if let Some(entry) = inner.map.get_mut(query) {
                    entry.last_used = tick;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Arc::clone(&entry.columns);
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let columns = Arc::new(materialize());
        let bytes = columns.resident_bytes() + ENTRY_OVERHEAD_BYTES;

        let mut inner = shard.inner.write();
        sync_shard_epoch(&mut inner, db_epoch);
        inner.tick += 1;
        let tick = inner.tick;
        // The shard may have moved to a newer database version while we
        // materialized (or we were stale from the start); inserting would
        // serve superseded columns to up-to-date sessions.
        if db_epoch != inner.epoch {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return columns;
        }
        // A racing miss may have inserted meanwhile; keep the incumbent so
        // concurrent callers converge on one allocation.
        if let Some(entry) = inner.map.get_mut(query) {
            entry.last_used = tick;
            return Arc::clone(&entry.columns);
        }
        // An entry larger than the shard's whole budget slice could only
        // ever evict everything else and then be evicted itself on the next
        // insert; refuse it residency instead (the caller keeps its Arc).
        if bytes > self.shard_capacity {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return columns;
        }
        inner.map.insert(
            query.clone(),
            Entry {
                columns: Arc::clone(&columns),
                last_used: tick,
                bytes,
            },
        );
        inner.resident_bytes += bytes;
        self.evict_to_budget(&mut inner);
        columns
    }

    /// Evicts the shard's least-recently-used entries until its budget
    /// slice is respected. An entry larger than the slice is evicted as
    /// soon as the next insert happens, but callers keep their `Arc` to it.
    fn evict_to_budget(&self, inner: &mut Inner) {
        while inner.resident_bytes > self.shard_capacity && !inner.map.is_empty() {
            let (victim, bytes) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(q, e)| (q.clone(), e.bytes))
                .expect("map checked non-empty");
            inner.map.remove(&victim);
            inner.resident_bytes -= bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Whether `query` currently has a resident entry (does not touch LRU
    /// state; intended for tests and introspection). One shared read lock
    /// on the query's shard — never the whole cache.
    pub fn contains(&self, query: &SelectionQuery) -> bool {
        self.shard_of(query).inner.read().map.contains_key(query)
    }

    /// Returns `query`'s resident columns if present and valid for
    /// `db_epoch`, without materializing on absence — the speculative
    /// lookup the ancestor-derivation scan runs while probing which
    /// ancestors are cached. A hit refreshes LRU recency and counts in
    /// [`CacheStats::hits`]; an absence is **not** counted as a miss (the
    /// caller is window-shopping across many ancestors and will
    /// materialize through [`get_or_insert_with`](Self::get_or_insert_with)
    /// at most once, keeping the hit-rate denominator meaningful).
    pub fn peek(&self, query: &SelectionQuery, db_epoch: u64) -> Option<Arc<GroupColumns>> {
        debug_assert!(query.is_canonical(), "cache key must be canonical");
        let shard = self.shard_of(query);
        let mut inner = shard.inner.write();
        // A stale or newer-epoch shard has nothing valid to serve; leave
        // invalidation to the next inserting lookup.
        if db_epoch != inner.epoch {
            return None;
        }
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner.map.get_mut(query)?;
        entry.last_used = tick;
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(Arc::clone(&entry.columns))
    }

    /// Number of resident entries: one shared read acquisition per shard.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.inner.read().map.len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters and epochs are kept).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            let mut inner = shard.inner.write();
            inner.map.clear();
            inner.resident_bytes = 0;
        }
    }

    /// A snapshot of the effectiveness counters: atomics plus one shared
    /// read acquisition per shard (consistent per shard, not across
    /// shards — fine for monitoring).
    pub fn stats(&self) -> CacheStats {
        let mut entries = 0;
        let mut resident_bytes = 0;
        for shard in self.shards.iter() {
            let inner = shard.inner.read();
            entries += inner.map.len();
            resident_bytes += inner.resident_bytes;
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            rejected_inserts: self.rejected.load(Ordering::Relaxed),
            entries,
            resident_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::AttrValue;
    use crate::schema::{AttrId, Entity};
    use crate::value::ValueId;

    fn q(attr: u16, value: u32) -> SelectionQuery {
        SelectionQuery::from_preds(vec![AttrValue::new(
            Entity::Item,
            AttrId(attr),
            ValueId(value),
        )])
    }

    /// Synthetic gather columns with `len` records.
    fn cols(len: u32) -> GroupColumns {
        GroupColumns {
            records: (0..len).collect(),
            reviewer_rows: vec![0; len as usize],
            item_rows: vec![0; len as usize],
        }
    }

    /// Budget that fits `n` entries of `len` records each. Gather columns
    /// cost 12 bytes per record (record id + reviewer row + item row).
    fn budget_for(n: usize, len: usize) -> usize {
        n * (len * 12 + ENTRY_OVERHEAD_BYTES)
    }

    /// Single-shard cache: the byte-arithmetic pins below assume one budget
    /// slice covering the whole capacity.
    fn unsharded(capacity_bytes: usize) -> GroupCache {
        GroupCache::with_shards(capacity_bytes, 1)
    }

    #[test]
    fn hit_returns_same_allocation() {
        let cache = unsharded(budget_for(4, 10));
        let a = cache.get_or_insert_with(&q(0, 0), 0, || cols(10));
        let b = cache.get_or_insert_with(&q(0, 0), 0, || panic!("must not rematerialize"));
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn peek_hits_without_inserting() {
        let cache = unsharded(budget_for(4, 10));
        assert!(cache.peek(&q(0, 0), 0).is_none());
        // Absence is not a miss: peek is speculative.
        assert_eq!(cache.stats().misses, 0);
        let a = cache.get_or_insert_with(&q(0, 0), 0, || cols(10));
        let b = cache.peek(&q(0, 0), 0).expect("resident");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().hits, 1);
        // A peek from a different epoch serves nothing.
        assert!(cache.peek(&q(0, 0), 1).is_none());
        // Peek refreshes recency: after peeking (0,0), inserting past the
        // budget evicts (0,1) rather than the peeked entry.
        let cache = unsharded(budget_for(2, 10));
        cache.get_or_insert_with(&q(0, 0), 0, || cols(10));
        cache.get_or_insert_with(&q(0, 1), 0, || cols(10));
        cache.peek(&q(0, 0), 0).unwrap();
        cache.get_or_insert_with(&q(0, 2), 0, || cols(10));
        assert!(cache.contains(&q(0, 0)), "peeked entry kept");
        assert!(!cache.contains(&q(0, 1)), "LRU entry evicted");
    }

    #[test]
    fn entry_cost_includes_gather_columns() {
        let cache = unsharded(budget_for(4, 10));
        cache.get_or_insert_with(&q(0, 0), 0, || cols(10));
        // 12 bytes per record: the row columns are charged, not just ids.
        assert_eq!(cache.stats().resident_bytes, 10 * 12 + ENTRY_OVERHEAD_BYTES);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = unsharded(budget_for(2, 10));
        cache.get_or_insert_with(&q(0, 0), 0, || cols(10));
        cache.get_or_insert_with(&q(0, 1), 0, || cols(10));
        // Touch (0,0) so (0,1) is the LRU entry.
        cache.get_or_insert_with(&q(0, 0), 0, || unreachable!());
        cache.get_or_insert_with(&q(0, 2), 0, || cols(10));
        assert!(cache.contains(&q(0, 0)), "recently used entry kept");
        assert!(!cache.contains(&q(0, 1)), "LRU entry evicted");
        assert!(cache.contains(&q(0, 2)));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn eviction_respects_byte_budget_not_entry_count() {
        // Budget fits four small entries or one big one.
        let cache = unsharded(budget_for(4, 10));
        for v in 0..4 {
            cache.get_or_insert_with(&q(0, v), 0, || cols(10));
        }
        assert_eq!(cache.len(), 4);
        // One entry with 4x the records forces several evictions.
        cache.get_or_insert_with(&q(1, 0), 0, || cols(40));
        assert!(cache.stats().resident_bytes <= cache.capacity_bytes());
        assert!(cache.contains(&q(1, 0)));
    }

    #[test]
    fn oversized_entry_rejected_but_still_returned() {
        let cache = unsharded(16); // smaller than any entry
        let columns = cache.get_or_insert_with(&q(0, 0), 0, || cols(100));
        assert_eq!(columns.len(), 100);
        // The entry never became resident — it was rejected, not evicted —
        // but the caller's Arc is intact.
        assert!(cache.is_empty());
        let stats = cache.stats();
        assert_eq!(stats.rejected_inserts, 1);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.resident_bytes, 0);
        cache.get_or_insert_with(&q(0, 1), 0, || cols(100));
        assert_eq!(cache.stats().rejected_inserts, 2);
        assert_eq!(columns.len(), 100);
    }

    #[test]
    fn bump_epoch_invalidates_entries_once() {
        let cache = unsharded(budget_for(4, 10));
        cache.get_or_insert_with(&q(0, 0), 0, || cols(10));
        assert_eq!(cache.epoch(), 0);
        // Stale bump (same epoch) is a no-op.
        assert!(!cache.bump_epoch(0));
        assert_eq!(cache.len(), 1);
        // A newer database epoch drops everything.
        assert!(cache.bump_epoch(3));
        assert!(cache.is_empty());
        assert_eq!(cache.stats().resident_bytes, 0);
        assert_eq!(cache.epoch(), 3);
        // Repeating the same bump clears nothing further.
        assert!(!cache.bump_epoch(3));
        // Entries inserted by up-to-date sessions are resident again.
        cache.get_or_insert_with(&q(0, 0), 3, || cols(10));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn stale_epoch_caller_neither_hits_nor_poisons() {
        let cache = unsharded(budget_for(4, 10));
        cache.get_or_insert_with(&q(0, 0), 1, || cols(10));
        assert_eq!(cache.epoch(), 1, "caller epoch lazily bumps the cache");
        // A session still pinned to epoch 0 materializes privately: no hit
        // on the epoch-1 entry, and nothing inserted for fresh sessions to
        // pick up.
        cache.get_or_insert_with(&q(0, 0), 0, || cols(10));
        let s = cache.stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.rejected_inserts, 1);
        assert_eq!(cache.len(), 1);
        // The up-to-date entry is untouched and still hits.
        cache.get_or_insert_with(&q(0, 0), 1, || unreachable!());
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn stats_stay_consistent_across_evictions() {
        let cache = unsharded(budget_for(2, 10));
        for v in 0..6 {
            cache.get_or_insert_with(&q(0, v), 0, || cols(10));
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 6);
        assert_eq!(stats.evictions, 4);
        assert_eq!(stats.entries, 2);
        assert_eq!(
            stats.resident_bytes,
            stats.entries * (10 * 12 + ENTRY_OVERHEAD_BYTES),
            "resident bytes must equal the sum of resident entry costs"
        );
    }

    #[test]
    fn clear_resets_entries_but_keeps_counters() {
        let cache = unsharded(budget_for(4, 10));
        cache.get_or_insert_with(&q(0, 0), 0, || cols(10));
        cache.get_or_insert_with(&q(0, 0), 0, || unreachable!());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().resident_bytes, 0);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn shard_count_must_be_a_power_of_two() {
        let _ = GroupCache::with_shards(1 << 20, 3);
    }

    #[test]
    fn sharded_cache_spreads_entries_and_keeps_aggregates() {
        let cache = GroupCache::with_shards(
            budget_for(64, 10) * DEFAULT_CACHE_SHARDS,
            DEFAULT_CACHE_SHARDS,
        );
        for v in 0..32 {
            cache.get_or_insert_with(&q(0, v), 0, || cols(10));
        }
        assert_eq!(cache.len(), 32, "ample budget: nothing evicted");
        for v in 0..32 {
            assert!(cache.contains(&q(0, v)));
            cache.get_or_insert_with(&q(0, v), 0, || unreachable!());
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (32, 32));
        assert_eq!(stats.entries, 32);
        assert_eq!(stats.resident_bytes, 32 * (10 * 12 + ENTRY_OVERHEAD_BYTES));
    }

    #[test]
    fn sharded_epoch_bump_clears_every_shard() {
        let cache = GroupCache::with_shards(
            budget_for(64, 10) * DEFAULT_CACHE_SHARDS,
            DEFAULT_CACHE_SHARDS,
        );
        for v in 0..32 {
            cache.get_or_insert_with(&q(0, v), 0, || cols(10));
        }
        assert!(cache.bump_epoch(2));
        assert!(cache.is_empty(), "eager bump clears all shards at once");
        assert_eq!(cache.epoch(), 2);
        // Stale callers are rejected on every shard afterwards.
        cache.get_or_insert_with(&q(0, 0), 1, || cols(10));
        assert!(cache.is_empty());
        assert_eq!(cache.stats().rejected_inserts, 1);
    }

    #[test]
    fn newer_epoch_caller_lazily_clears_only_its_shard() {
        let cache = GroupCache::with_shards(
            budget_for(64, 10) * DEFAULT_CACHE_SHARDS,
            DEFAULT_CACHE_SHARDS,
        );
        for v in 0..32 {
            cache.get_or_insert_with(&q(0, v), 0, || cols(10));
        }
        // One epoch-1 lookup advances the aggregate epoch and clears the
        // touched shard; stale entries elsewhere are cleared lazily, and
        // stale callers can no longer hit them.
        cache.get_or_insert_with(&q(0, 0), 1, || cols(10));
        assert_eq!(cache.epoch(), 1);
        for v in 0..32 {
            cache.get_or_insert_with(&q(0, v), 1, || cols(10));
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 32, "every shard converged to epoch 1");
        assert_eq!(stats.hits, 1, "only the re-inserted epoch-1 entry hit");
    }
}
