//! Cross-session cache of materialized rating-group gather columns.
//!
//! Materializing a rating group is the dominant per-step cost on large
//! databases (an adjacency walk over every matching reviewer or item).
//! Different exploration sessions frequently visit the same queries — the
//! recommendation builder proposes the same drill-downs to everyone — so
//! [`GroupCache`] shares the walk result across sessions.
//!
//! What is cached is the **pre-shuffle [`GroupColumns`]** — the record list
//! in deterministic walk order plus both entity-row gather columns
//! ([`SubjectiveDb::collect_group_columns`]) — *not* the shuffled
//! [`RatingGroup`]: the phase-order shuffle depends on the per-step seed,
//! so caching after the shuffle would either leak one session's phase order
//! into another or break seed determinism. Callers permute an index vector
//! with their own seed and gather from the shared columns
//! ([`RatingGroup::from_columns`]), making the cached path byte-identical
//! to the uncached one while also sharing the `reviewer_of`/`item_of`
//! gather that the scan kernels consume.
//!
//! Eviction is least-recently-used by resident bytes: each entry is costed
//! at its gathered-column size (records plus both row columns, 12 bytes per
//! record) plus a fixed per-entry overhead, and inserts evict the least
//! recently touched entries until the configured budget is respected again.
//!
//! [`SubjectiveDb::collect_group_columns`]: crate::database::SubjectiveDb::collect_group_columns
//! [`RatingGroup`]: crate::group::RatingGroup
//! [`RatingGroup::from_columns`]: crate::group::RatingGroup::from_columns

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::predicate::SelectionQuery;
use crate::scan::GroupColumns;

/// Fixed per-entry bookkeeping cost (key, map slot, counters), added to the
/// column payload when charging an entry against the byte budget.
const ENTRY_OVERHEAD_BYTES: usize = 128;

/// Counters describing cache effectiveness; see [`GroupCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to materialize the record list.
    pub misses: u64,
    /// Entries evicted to stay within the byte budget.
    pub evictions: u64,
    /// Inserts refused residency: entries larger than the whole budget
    /// (`GroupCache`) or racing inserts that lost to an incumbent
    /// (`DistanceCache`). A high rate signals a budget that is too small
    /// for the workload's group sizes.
    pub rejected_inserts: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Bytes currently charged against the budget.
    pub resident_bytes: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when none yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    columns: Arc<GroupColumns>,
    /// Logical clock value of the most recent touch.
    last_used: u64,
    /// What this entry charges against the byte budget.
    bytes: usize,
}

struct Inner {
    map: HashMap<SelectionQuery, Entry>,
    /// Monotonic logical clock; bumped on every touch.
    tick: u64,
    resident_bytes: usize,
}

/// A thread-safe LRU cache of rating-group gather columns, keyed by
/// canonicalized [`SelectionQuery`] and bounded by resident bytes.
///
/// Shared across sessions behind an [`Arc`]; all methods take `&self`.
pub struct GroupCache {
    inner: Mutex<Inner>,
    capacity_bytes: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    rejected: AtomicU64,
    /// Database epoch the resident entries were materialized against; see
    /// [`bump_epoch`](Self::bump_epoch).
    epoch: AtomicU64,
}

impl std::fmt::Debug for GroupCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("GroupCache")
            .field("capacity_bytes", &self.capacity_bytes)
            .field("stats", &stats)
            .finish()
    }
}

impl GroupCache {
    /// Creates a cache bounded to roughly `capacity_bytes` of column data.
    pub fn new(capacity_bytes: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
                resident_bytes: 0,
            }),
            capacity_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
        }
    }

    /// The configured byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// The database epoch this cache's entries are valid for.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Invalidates every resident entry if `db_epoch` is newer than the
    /// epoch the entries were built against. Gather columns are a pure
    /// function of `(query, database contents)`, so a rating append makes
    /// every entry stale at once; dropping them wholesale is both correct
    /// and cheap relative to the append's own index rebuild. Counters are
    /// kept (invalidation is not an eviction). Returns whether anything was
    /// dropped.
    pub fn bump_epoch(&self, db_epoch: u64) -> bool {
        if db_epoch <= self.epoch.load(Ordering::Relaxed) {
            return false;
        }
        let mut inner = self.inner.lock();
        // Re-check under the lock so racing bumps to the same epoch clear
        // once.
        if db_epoch <= self.epoch.load(Ordering::Relaxed) {
            return false;
        }
        self.epoch.store(db_epoch, Ordering::Relaxed);
        inner.map.clear();
        inner.resident_bytes = 0;
        true
    }

    /// Returns the cached gather columns for `query`, materializing them
    /// with `materialize` on a miss. The returned [`Arc`] stays valid even
    /// if the entry is evicted while the caller holds it.
    ///
    /// `db_epoch` is the append epoch of the database the caller would
    /// materialize from. It keeps the shared map single-version: a caller
    /// from a newer epoch lazily invalidates every older entry (as
    /// [`bump_epoch`](Self::bump_epoch) would), and a caller pinned to an
    /// older database version neither hits nor inserts — its columns
    /// describe superseded data, so it materializes privately (counted as a
    /// miss plus a rejected insert).
    ///
    /// `materialize` runs *outside* the cache lock, so a slow walk does not
    /// block other sessions; if two sessions miss on the same query
    /// concurrently, both materialize and one result wins.
    ///
    /// # Panics
    /// In debug builds, panics if `query` is not in canonical form (see
    /// [`SelectionQuery::canonicalize`]); such a query would dodge cache
    /// hits for its canonical twin.
    pub fn get_or_insert_with(
        &self,
        query: &SelectionQuery,
        db_epoch: u64,
        materialize: impl FnOnce() -> GroupColumns,
    ) -> Arc<GroupColumns> {
        debug_assert!(query.is_canonical(), "cache key must be canonical");
        self.bump_epoch(db_epoch);
        {
            let mut inner = self.inner.lock();
            inner.tick += 1;
            let tick = inner.tick;
            // `epoch` only moves under the `inner` lock, so this check is
            // race-free with concurrent bumps.
            if db_epoch == self.epoch.load(Ordering::Relaxed) {
                if let Some(entry) = inner.map.get_mut(query) {
                    entry.last_used = tick;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Arc::clone(&entry.columns);
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let columns = Arc::new(materialize());
        let bytes = columns.resident_bytes() + ENTRY_OVERHEAD_BYTES;

        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        // The cache may have moved to a newer database version while we
        // materialized (or we were stale from the start); inserting would
        // serve superseded columns to up-to-date sessions.
        if db_epoch != self.epoch.load(Ordering::Relaxed) {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return columns;
        }
        // A racing miss may have inserted meanwhile; keep the incumbent so
        // concurrent callers converge on one allocation.
        if let Some(entry) = inner.map.get_mut(query) {
            entry.last_used = tick;
            return Arc::clone(&entry.columns);
        }
        // An entry larger than the whole budget could only ever evict
        // everything else and then be evicted itself on the next insert;
        // refuse it residency instead (the caller keeps its Arc).
        if bytes > self.capacity_bytes {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return columns;
        }
        inner.map.insert(
            query.clone(),
            Entry {
                columns: Arc::clone(&columns),
                last_used: tick,
                bytes,
            },
        );
        inner.resident_bytes += bytes;
        self.evict_to_budget(&mut inner);
        columns
    }

    /// Evicts least-recently-used entries until the budget is respected.
    /// An entry larger than the whole budget is evicted as soon as the next
    /// insert happens, but callers keep their `Arc` to it.
    fn evict_to_budget(&self, inner: &mut Inner) {
        while inner.resident_bytes > self.capacity_bytes && !inner.map.is_empty() {
            let (victim, bytes) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(q, e)| (q.clone(), e.bytes))
                .expect("map checked non-empty");
            inner.map.remove(&victim);
            inner.resident_bytes -= bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Whether `query` currently has a resident entry (does not touch LRU
    /// state; intended for tests and introspection).
    pub fn contains(&self, query: &SelectionQuery) -> bool {
        self.inner.lock().map.contains_key(query)
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.resident_bytes = 0;
    }

    /// A consistent snapshot of the effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        let (entries, resident_bytes) = {
            let inner = self.inner.lock();
            (inner.map.len(), inner.resident_bytes)
        };
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            rejected_inserts: self.rejected.load(Ordering::Relaxed),
            entries,
            resident_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::AttrValue;
    use crate::schema::{AttrId, Entity};
    use crate::value::ValueId;

    fn q(attr: u16, value: u32) -> SelectionQuery {
        SelectionQuery::from_preds(vec![AttrValue::new(
            Entity::Item,
            AttrId(attr),
            ValueId(value),
        )])
    }

    /// Synthetic gather columns with `len` records.
    fn cols(len: u32) -> GroupColumns {
        GroupColumns {
            records: (0..len).collect(),
            reviewer_rows: vec![0; len as usize],
            item_rows: vec![0; len as usize],
        }
    }

    /// Budget that fits `n` entries of `len` records each. Gather columns
    /// cost 12 bytes per record (record id + reviewer row + item row).
    fn budget_for(n: usize, len: usize) -> usize {
        n * (len * 12 + ENTRY_OVERHEAD_BYTES)
    }

    #[test]
    fn hit_returns_same_allocation() {
        let cache = GroupCache::new(budget_for(4, 10));
        let a = cache.get_or_insert_with(&q(0, 0), 0, || cols(10));
        let b = cache.get_or_insert_with(&q(0, 0), 0, || panic!("must not rematerialize"));
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn entry_cost_includes_gather_columns() {
        let cache = GroupCache::new(budget_for(4, 10));
        cache.get_or_insert_with(&q(0, 0), 0, || cols(10));
        // 12 bytes per record: the row columns are charged, not just ids.
        assert_eq!(cache.stats().resident_bytes, 10 * 12 + ENTRY_OVERHEAD_BYTES);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = GroupCache::new(budget_for(2, 10));
        cache.get_or_insert_with(&q(0, 0), 0, || cols(10));
        cache.get_or_insert_with(&q(0, 1), 0, || cols(10));
        // Touch (0,0) so (0,1) is the LRU entry.
        cache.get_or_insert_with(&q(0, 0), 0, || unreachable!());
        cache.get_or_insert_with(&q(0, 2), 0, || cols(10));
        assert!(cache.contains(&q(0, 0)), "recently used entry kept");
        assert!(!cache.contains(&q(0, 1)), "LRU entry evicted");
        assert!(cache.contains(&q(0, 2)));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn eviction_respects_byte_budget_not_entry_count() {
        // Budget fits four small entries or one big one.
        let cache = GroupCache::new(budget_for(4, 10));
        for v in 0..4 {
            cache.get_or_insert_with(&q(0, v), 0, || cols(10));
        }
        assert_eq!(cache.len(), 4);
        // One entry with 4x the records forces several evictions.
        cache.get_or_insert_with(&q(1, 0), 0, || cols(40));
        assert!(cache.stats().resident_bytes <= cache.capacity_bytes());
        assert!(cache.contains(&q(1, 0)));
    }

    #[test]
    fn oversized_entry_rejected_but_still_returned() {
        let cache = GroupCache::new(16); // smaller than any entry
        let columns = cache.get_or_insert_with(&q(0, 0), 0, || cols(100));
        assert_eq!(columns.len(), 100);
        // The entry never became resident — it was rejected, not evicted —
        // but the caller's Arc is intact.
        assert!(cache.is_empty());
        let stats = cache.stats();
        assert_eq!(stats.rejected_inserts, 1);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.resident_bytes, 0);
        cache.get_or_insert_with(&q(0, 1), 0, || cols(100));
        assert_eq!(cache.stats().rejected_inserts, 2);
        assert_eq!(columns.len(), 100);
    }

    #[test]
    fn bump_epoch_invalidates_entries_once() {
        let cache = GroupCache::new(budget_for(4, 10));
        cache.get_or_insert_with(&q(0, 0), 0, || cols(10));
        assert_eq!(cache.epoch(), 0);
        // Stale bump (same epoch) is a no-op.
        assert!(!cache.bump_epoch(0));
        assert_eq!(cache.len(), 1);
        // A newer database epoch drops everything.
        assert!(cache.bump_epoch(3));
        assert!(cache.is_empty());
        assert_eq!(cache.stats().resident_bytes, 0);
        assert_eq!(cache.epoch(), 3);
        // Repeating the same bump clears nothing further.
        assert!(!cache.bump_epoch(3));
        // Entries inserted by up-to-date sessions are resident again.
        cache.get_or_insert_with(&q(0, 0), 3, || cols(10));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn stale_epoch_caller_neither_hits_nor_poisons() {
        let cache = GroupCache::new(budget_for(4, 10));
        cache.get_or_insert_with(&q(0, 0), 1, || cols(10));
        assert_eq!(cache.epoch(), 1, "caller epoch lazily bumps the cache");
        // A session still pinned to epoch 0 materializes privately: no hit
        // on the epoch-1 entry, and nothing inserted for fresh sessions to
        // pick up.
        cache.get_or_insert_with(&q(0, 0), 0, || cols(10));
        let s = cache.stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.rejected_inserts, 1);
        assert_eq!(cache.len(), 1);
        // The up-to-date entry is untouched and still hits.
        cache.get_or_insert_with(&q(0, 0), 1, || unreachable!());
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn stats_stay_consistent_across_evictions() {
        let cache = GroupCache::new(budget_for(2, 10));
        for v in 0..6 {
            cache.get_or_insert_with(&q(0, v), 0, || cols(10));
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 6);
        assert_eq!(stats.evictions, 4);
        assert_eq!(stats.entries, 2);
        assert_eq!(
            stats.resident_bytes,
            stats.entries * (10 * 12 + ENTRY_OVERHEAD_BYTES),
            "resident bytes must equal the sum of resident entry costs"
        );
    }

    #[test]
    fn clear_resets_entries_but_keeps_counters() {
        let cache = GroupCache::new(budget_for(4, 10));
        cache.get_or_insert_with(&q(0, 0), 0, || cols(10));
        cache.get_or_insert_with(&q(0, 0), 0, || unreachable!());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().resident_bytes, 0);
        assert_eq!(cache.stats().hits, 1);
    }
}
