//! Gathered columnar scan blocks — the storage half of the staged scan
//! execution layer.
//!
//! The phased scan (Algorithm 1) used to be row-at-a-time: every family
//! accumulator re-resolved `reviewer_of`/`item_of` and re-fetched the score
//! byte per record *per family*. This module factors that work out into a
//! per-phase **gathered block** built once and shared by every consumer:
//!
//! * [`GroupColumns`] — a rating group's record ids plus its pre-resolved
//!   reviewer-row and item-row columns, in pre-shuffle walk order. This is
//!   what the group cache stores: the gather is a pure function of the
//!   query, so it can be shared across sessions, while the phase-order
//!   shuffle stays per-session (each caller permutes with its own seed via
//!   [`RatingGroup::from_columns`]).
//! * [`ScanScratch`] — reusable gather buffers. Steady-state steps reuse
//!   the same scratch, so building a block allocates nothing once the
//!   buffers have grown to the working-set size.
//! * [`ScanBlock`] — a borrowed view of one phase fraction: entity-row
//!   slices (one per side, shared by every family on that side) and one
//!   contiguous score buffer per gathered rating dimension.
//!
//! [`RatingGroup::from_columns`]: crate::group::RatingGroup::from_columns

use std::ops::Range;

use subdex_stats::kernels;

use crate::cindex::CompressedIndex;
use crate::group::RatingGroup;
use crate::predicate::AttrValue;
use crate::ratings::{DimId, RatingTable, RecordId};
use crate::schema::Entity;

/// A rating group's records with both entity-row columns pre-resolved, in
/// deterministic pre-shuffle walk order.
///
/// Built once per query (see `SubjectiveDb::collect_group_columns`) and
/// shareable across sessions: the phase-order shuffle is applied later,
/// per caller, by [`RatingGroup::from_columns`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupColumns {
    /// Record ids in walk order.
    pub records: Vec<RecordId>,
    /// `reviewer_rows[i]` = reviewer row of `records[i]`.
    pub reviewer_rows: Vec<u32>,
    /// `item_rows[i]` = item row of `records[i]`.
    pub item_rows: Vec<u32>,
}

impl GroupColumns {
    /// Resolves both entity-row columns for `records` in one pass each,
    /// via the batch gather kernel (`vpgatherdd` on AVX2 hosts).
    pub fn gather(ratings: &RatingTable, records: Vec<RecordId>) -> Self {
        let path = kernels::active();
        let mut reviewer_rows = Vec::new();
        let mut item_rows = Vec::new();
        kernels::gather_u32(
            path,
            ratings.reviewer_column(),
            &records,
            &mut reviewer_rows,
        );
        kernels::gather_u32(path, ratings.item_column(), &records, &mut item_rows);
        Self {
            records,
            reviewer_rows,
            item_rows,
        }
    }

    /// Derives the gather columns of the refinement `query ∪ {pred}` from
    /// this (the parent query's) columns — the single-predicate wrapper
    /// over [`derive_refinement_multi`](Self::derive_refinement_multi).
    /// No adjacency walk, no re-gather.
    ///
    /// `entity` selects which row column is probed and must match
    /// `pred.entity`; `index` must be the compressed index of that
    /// entity's table.
    pub fn derive_refinement(
        &self,
        entity: Entity,
        pred: &AttrValue,
        index: &CompressedIndex,
    ) -> GroupColumns {
        debug_assert_eq!(entity, pred.entity, "probe side must match the predicate");
        let words = index
            .intersect(&[(pred.attr, pred.value)])
            .into_words(index.rows());
        match entity {
            Entity::Reviewer => self.derive_refinement_multi(words.as_deref(), None),
            Entity::Item => self.derive_refinement_multi(None, words.as_deref()),
        }
    }

    /// Derives the gather columns of a refinement that adds **any number
    /// of predicates on either side** from this (an ancestor query's)
    /// columns: one linear pass probing each record's reviewer row against
    /// `reviewer_words` and its item row against `item_words` (a `None`
    /// side is unconstrained), then three exact-size gathers through the
    /// surviving positions. The word masks are the added predicates'
    /// container intersection (`CompressedIndex::intersect` +
    /// `MemberSet::into_words`).
    ///
    /// Because the canonical walk order is ascending record id — a pure
    /// function of the query, preserved by subset filtering — the result is
    /// byte-identical to a full `collect_group_columns` on the refined
    /// query, so derived columns are safe to insert into the shared group
    /// cache. The probe kernel compacts positions branchlessly
    /// (near-50%-selectivity predicates would stall a branchy loop), and
    /// the gather kernel sizes each column exactly (`reserve_exact`) — the
    /// cache's byte budget relies on capacities not being padded.
    pub fn derive_refinement_multi(
        &self,
        reviewer_words: Option<&[u64]>,
        item_words: Option<&[u64]>,
    ) -> GroupColumns {
        let path = kernels::active();
        let mut idx = Vec::new();
        kernels::filter_rows(
            path,
            &self.reviewer_rows,
            &self.item_rows,
            reviewer_words,
            item_words,
            &mut idx,
        );
        let mut records = Vec::new();
        let mut reviewer_rows = Vec::new();
        let mut item_rows = Vec::new();
        kernels::gather_u32(path, &self.records, &idx, &mut records);
        kernels::gather_u32(path, &self.reviewer_rows, &idx, &mut reviewer_rows);
        kernels::gather_u32(path, &self.item_rows, &idx, &mut item_rows);
        GroupColumns {
            records,
            reviewer_rows,
            item_rows,
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the group is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Heap bytes of the three columns — what a cache entry charges against
    /// its byte budget (excluding fixed per-entry overhead).
    pub fn resident_bytes(&self) -> usize {
        self.records.len() * std::mem::size_of::<RecordId>()
            + self.reviewer_rows.len() * std::mem::size_of::<u32>()
            + self.item_rows.len() * std::mem::size_of::<u32>()
    }
}

/// One gathered phase fraction: entity rows for both sides plus contiguous
/// per-dimension score buffers, all indexed `0..len` in phase order.
#[derive(Debug, Clone, Copy)]
pub struct ScanBlock<'a> {
    records: &'a [RecordId],
    reviewer_rows: &'a [u32],
    item_rows: &'a [u32],
    /// Gathered dimensions, in the order their score buffers are laid out.
    dims: &'a [DimId],
    /// Dim-major flat score buffer: dimension `dims[d]`'s scores are
    /// `scores[d * len .. (d + 1) * len]`.
    scores: &'a [u8],
}

impl<'a> ScanBlock<'a> {
    /// Number of records in the block.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the block holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record ids of the block, in phase order.
    pub fn records(&self) -> &'a [RecordId] {
        self.records
    }

    /// The gathered entity rows of one side; `rows[i]` is the reviewer or
    /// item row of `records[i]`.
    pub fn entity_rows(&self, entity: Entity) -> &'a [u32] {
        match entity {
            Entity::Reviewer => self.reviewer_rows,
            Entity::Item => self.item_rows,
        }
    }

    /// The dimensions whose scores were gathered into this block.
    pub fn dims(&self) -> &'a [DimId] {
        self.dims
    }

    /// The contiguous score buffer of one gathered dimension, or `None` if
    /// `dim` was not gathered.
    pub fn scores_for(&self, dim: DimId) -> Option<&'a [u8]> {
        let pos = self.dims.iter().position(|&d| d == dim)?;
        let len = self.len();
        Some(&self.scores[pos * len..(pos + 1) * len])
    }
}

/// Reusable gather buffers for building [`ScanBlock`]s.
///
/// Usage per group: call [`prepare_group`](Self::prepare_group) once, then
/// [`gather_phase`](Self::gather_phase) for each phase range. The buffers
/// are retained across groups and steps, so steady-state scans allocate
/// nothing once the buffers reach the working-set size.
#[derive(Debug, Default)]
pub struct ScanScratch {
    /// Whole-group entity-row gathers, used only when the group does not
    /// carry pre-gathered columns (see [`RatingGroup::entity_rows`]).
    reviewer_rows: Vec<u32>,
    item_rows: Vec<u32>,
    /// Dimensions gathered into `scores` by the last `gather_phase` call.
    dims: Vec<DimId>,
    /// Dim-major flat per-phase score gather.
    scores: Vec<u8>,
}

impl ScanScratch {
    /// Fresh scratch with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Heap bytes currently retained by the gather buffers — capacity, not
    /// length, since a pooled scratch holds its capacity between steps.
    pub fn resident_bytes(&self) -> usize {
        self.reviewer_rows.capacity() * std::mem::size_of::<u32>()
            + self.item_rows.capacity() * std::mem::size_of::<u32>()
            + self.dims.capacity() * std::mem::size_of::<DimId>()
            + self.scores.capacity()
    }

    /// Heap bytes the most recent gathers actually needed (length, not
    /// capacity) — the demand signal of the executor's high-water trim.
    pub fn used_bytes(&self) -> usize {
        self.reviewer_rows.len() * std::mem::size_of::<u32>()
            + self.item_rows.len() * std::mem::size_of::<u32>()
            + self.dims.len() * std::mem::size_of::<DimId>()
            + self.scores.len()
    }

    /// Releases all retained capacity. Invoked by the executor's high-water
    /// trim when a pooled scratch's resident bytes far exceed what recent
    /// steps actually used.
    pub fn shrink(&mut self) {
        self.reviewer_rows = Vec::new();
        self.item_rows = Vec::new();
        self.dims = Vec::new();
        self.scores = Vec::new();
    }

    /// Resolves the whole-group entity-row columns when `group` lacks
    /// pre-gathered ones. A no-op for groups built via
    /// [`RatingGroup::from_columns`], which already carry both columns —
    /// the gather the cache shares.
    pub fn prepare_group(&mut self, ratings: &RatingTable, group: &RatingGroup) {
        if group.has_entity_rows() {
            return;
        }
        let path = kernels::active();
        kernels::gather_u32(
            path,
            ratings.reviewer_column(),
            group.records(),
            &mut self.reviewer_rows,
        );
        kernels::gather_u32(
            path,
            ratings.item_column(),
            group.records(),
            &mut self.item_rows,
        );
    }

    /// Builds the block for one phase `range` of `group`, gathering one
    /// contiguous score buffer per dimension in `dims`. Entity rows are
    /// sliced from the group's own columns when present, otherwise from the
    /// buffers filled by [`prepare_group`](Self::prepare_group).
    ///
    /// # Panics
    /// Panics if `range` is out of bounds, or if the group lacks columns
    /// and `prepare_group` was not called for it.
    pub fn gather_phase<'a>(
        &'a mut self,
        ratings: &RatingTable,
        group: &'a RatingGroup,
        range: Range<usize>,
        dims: &[DimId],
    ) -> ScanBlock<'a> {
        let phase = &group.records()[range.clone()];
        self.dims.clear();
        self.dims.extend_from_slice(dims);
        self.scores.clear();
        self.scores.reserve(dims.len() * phase.len());
        // Score gathers stay scalar: scores are bytes, and `vpgatherdd`
        // loads 32-bit lanes, so a SIMD byte gather would read up to three
        // bytes past each score and need per-chunk bounds slack. The u8
        // loads are cache-resident and cheap; the entity-row gathers above
        // are where the kernel pays.
        for &dim in dims {
            let col = ratings.score_column(dim);
            self.scores
                .extend(phase.iter().map(|&rec| col[rec as usize]));
        }
        let (reviewer_rows, item_rows) = match (
            group.entity_rows(Entity::Reviewer),
            group.entity_rows(Entity::Item),
        ) {
            (Some(r), Some(i)) => (&r[range.clone()], &i[range]),
            _ => {
                assert!(
                    self.reviewer_rows.len() == group.len(),
                    "prepare_group must run before gather_phase on a group \
                     without pre-gathered columns"
                );
                (&self.reviewer_rows[range.clone()], &self.item_rows[range])
            }
        };
        ScanBlock {
            records: phase,
            reviewer_rows,
            item_rows,
            dims: &self.dims,
            scores: &self.scores,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratings::RatingTableBuilder;

    fn table() -> RatingTable {
        let mut b = RatingTableBuilder::new(vec!["overall".into(), "food".into()], 5);
        b.push(0, 3, &[4, 3]);
        b.push(1, 0, &[4, 4]);
        b.push(1, 1, &[3, 4]);
        b.push(2, 3, &[5, 5]);
        b.build(3, 4)
    }

    #[test]
    fn group_columns_gather_resolves_both_sides() {
        let t = table();
        let cols = GroupColumns::gather(&t, vec![3, 0, 2]);
        assert_eq!(cols.len(), 3);
        assert_eq!(cols.reviewer_rows, vec![2, 0, 1]);
        assert_eq!(cols.item_rows, vec![3, 3, 1]);
        assert_eq!(cols.resident_bytes(), 3 * 12);
    }

    #[test]
    fn gather_phase_without_group_columns() {
        let t = table();
        let group = RatingGroup::with_order(vec![3, 0, 2, 1]);
        let mut scratch = ScanScratch::new();
        scratch.prepare_group(&t, &group);
        let dims = [DimId(1), DimId(0)];
        let block = scratch.gather_phase(&t, &group, 1..3, &dims);
        assert_eq!(block.len(), 2);
        assert_eq!(block.records(), &[0, 2]);
        assert_eq!(block.entity_rows(Entity::Reviewer), &[0, 1]);
        assert_eq!(block.entity_rows(Entity::Item), &[3, 1]);
        // Records 0 and 2: food scores 3, 4; overall scores 4, 3.
        assert_eq!(block.scores_for(DimId(1)), Some(&[3, 4][..]));
        assert_eq!(block.scores_for(DimId(0)), Some(&[4, 3][..]));
    }

    #[test]
    fn gather_phase_prefers_group_columns() {
        let t = table();
        let cols = GroupColumns::gather(&t, (0..4).collect());
        let group = RatingGroup::from_columns(&cols, 9);
        let mut scratch = ScanScratch::new();
        scratch.prepare_group(&t, &group); // no-op
        let dims = [DimId(0)];
        let block = scratch.gather_phase(&t, &group, 0..group.len(), &dims);
        for (i, &rec) in block.records().iter().enumerate() {
            assert_eq!(block.entity_rows(Entity::Reviewer)[i], t.reviewer_of(rec));
            assert_eq!(block.entity_rows(Entity::Item)[i], t.item_of(rec));
            assert_eq!(
                block.scores_for(DimId(0)).unwrap()[i],
                t.score(rec, DimId(0))
            );
        }
    }

    #[test]
    fn scores_for_unknown_dim_is_none() {
        let t = table();
        let group = RatingGroup::with_order(vec![0, 1]);
        let mut scratch = ScanScratch::new();
        scratch.prepare_group(&t, &group);
        let dims = [DimId(0)];
        let block = scratch.gather_phase(&t, &group, 0..2, &dims);
        assert!(block.scores_for(DimId(1)).is_none());
        assert_eq!(block.dims(), &[DimId(0)]);
    }
}
