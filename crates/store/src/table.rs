//! Entity tables (reviewers and items).
//!
//! An [`EntityTable`] owns its [`Schema`], one [`Dictionary`] per attribute,
//! and one [`Column`] per attribute. Rows are appended through
//! [`EntityTableBuilder`], which interns values and enforces the schema
//! (single- vs multi-valued arity).

use crate::column::{Column, CsrColumn};
use crate::schema::{AttrId, Schema};
use crate::value::{Dictionary, Value, ValueId};

/// One cell of an input row: a single value or a value set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cell {
    /// Atomic value for a single-valued attribute.
    One(Value),
    /// Value set for a multi-valued attribute.
    Many(Vec<Value>),
}

impl From<Value> for Cell {
    fn from(v: Value) -> Self {
        Cell::One(v)
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::One(Value::str(s))
    }
}

impl From<i64> for Cell {
    fn from(v: i64) -> Self {
        Cell::One(Value::int(v))
    }
}

impl From<Vec<Value>> for Cell {
    fn from(vs: Vec<Value>) -> Self {
        Cell::Many(vs)
    }
}

/// A fully built, immutable entity table.
#[derive(Debug, Clone)]
pub struct EntityTable {
    schema: Schema,
    dicts: Vec<Dictionary>,
    columns: Vec<Column>,
    rows: usize,
}

impl EntityTable {
    /// Reassembles a table from its parts (the snapshot-load path),
    /// validating that the parts agree with each other: one dictionary and
    /// one column per attribute, column arity matching the schema, every
    /// row present in every column, and every stored code resolvable in its
    /// attribute's dictionary. A table that passes can never panic inside
    /// the accessors below on in-range rows.
    pub fn from_parts(
        schema: Schema,
        dicts: Vec<Dictionary>,
        columns: Vec<Column>,
        rows: usize,
    ) -> Result<Self, crate::error::StoreError> {
        use crate::error::StoreError;
        if dicts.len() != schema.len() || columns.len() != schema.len() {
            return Err(StoreError::invalid(format!(
                "entity table has {} attributes but {} dictionaries / {} columns",
                schema.len(),
                dicts.len(),
                columns.len()
            )));
        }
        for (i, ((attr, def), (dict, col))) in schema
            .iter()
            .zip(dicts.iter().zip(columns.iter()))
            .enumerate()
        {
            let _ = attr;
            if col.len() != rows {
                return Err(StoreError::invalid(format!(
                    "column {i} ({}) has {} rows, table has {rows}",
                    def.name,
                    col.len()
                )));
            }
            let multi = matches!(col, Column::Multi(_));
            if multi != def.multi_valued {
                return Err(StoreError::invalid(format!(
                    "column {i} ({}) arity does not match schema",
                    def.name
                )));
            }
            let max = dict.len() as u32;
            let in_range = match col {
                Column::Single(v) => v.iter().all(|id| id.0 < max),
                Column::Multi(c) => c.flat_values().iter().all(|id| id.0 < max),
            };
            if !in_range {
                return Err(StoreError::invalid(format!(
                    "column {i} ({}) stores a code outside its dictionary",
                    def.name
                )));
            }
        }
        Ok(Self {
            schema,
            dicts,
            columns,
            rows,
        })
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The dictionary of one attribute.
    pub fn dictionary(&self, attr: AttrId) -> &Dictionary {
        &self.dicts[attr.index()]
    }

    /// The column of one attribute.
    pub fn column(&self, attr: AttrId) -> &Column {
        &self.columns[attr.index()]
    }

    /// The encoded values of `row` for `attr` (slice of length 1 for
    /// single-valued attributes).
    #[inline]
    pub fn values(&self, row: u32, attr: AttrId) -> &[ValueId] {
        self.columns[attr.index()].values(row)
    }

    /// Decodes the values of `row` for `attr` into owned [`Value`]s.
    pub fn decoded_values(&self, row: u32, attr: AttrId) -> Vec<Value> {
        let dict = self.dictionary(attr);
        self.values(row, attr)
            .iter()
            .map(|&id| dict.value(id).clone())
            .collect()
    }

    /// Whether `row` carries `value` for `attr`.
    pub fn row_has(&self, row: u32, attr: AttrId, value: ValueId) -> bool {
        self.columns[attr.index()].contains(row, value)
    }
}

/// Builder for [`EntityTable`].
#[derive(Debug, Clone)]
pub struct EntityTableBuilder {
    schema: Schema,
    dicts: Vec<Dictionary>,
    single: Vec<Option<Vec<ValueId>>>,
    multi: Vec<Option<Vec<Vec<ValueId>>>>,
    rows: usize,
}

impl EntityTableBuilder {
    /// Creates a builder for the given schema.
    pub fn new(schema: Schema) -> Self {
        let n = schema.len();
        let mut single: Vec<Option<Vec<ValueId>>> = Vec::with_capacity(n);
        let mut multi: Vec<Option<Vec<Vec<ValueId>>>> = Vec::with_capacity(n);
        for (_, def) in schema.iter() {
            if def.multi_valued {
                single.push(None);
                multi.push(Some(Vec::new()));
            } else {
                single.push(Some(Vec::new()));
                multi.push(None);
            }
        }
        Self {
            dicts: vec![Dictionary::new(); n],
            schema,
            single,
            multi,
            rows: 0,
        }
    }

    /// Appends one row. `cells` must have one entry per schema attribute, in
    /// schema order.
    ///
    /// # Panics
    /// Panics on arity mismatch, or when a `Many` cell targets a
    /// single-valued attribute (and vice versa; a `One` cell on a
    /// multi-valued attribute is accepted as a singleton set).
    pub fn push_row(&mut self, cells: Vec<Cell>) -> u32 {
        assert_eq!(
            cells.len(),
            self.schema.len(),
            "row arity does not match schema"
        );
        for (i, cell) in cells.into_iter().enumerate() {
            let def = self.schema.attr(AttrId(i as u16));
            let dict = &mut self.dicts[i];
            match (cell, def.multi_valued) {
                (Cell::One(v), false) => {
                    let id = dict.intern(v);
                    self.single[i].as_mut().expect("single column").push(id);
                }
                (Cell::One(v), true) => {
                    let id = dict.intern(v);
                    self.multi[i].as_mut().expect("multi column").push(vec![id]);
                }
                (Cell::Many(vs), true) => {
                    let ids: Vec<ValueId> = vs.into_iter().map(|v| dict.intern(v)).collect();
                    self.multi[i].as_mut().expect("multi column").push(ids);
                }
                (Cell::Many(_), false) => {
                    panic!(
                        "attribute {:?} is single-valued but got a value set",
                        def.name
                    );
                }
            }
        }
        let row = self.rows as u32;
        self.rows += 1;
        row
    }

    /// Number of rows appended so far.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether no rows were appended.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Finalizes the table.
    pub fn build(self) -> EntityTable {
        let columns: Vec<Column> = self
            .single
            .into_iter()
            .zip(self.multi)
            .map(|(s, m)| match (s, m) {
                (Some(v), None) => Column::Single(v),
                (None, Some(rows)) => Column::Multi(CsrColumn::from_rows(rows)),
                _ => unreachable!("builder invariant"),
            })
            .collect();
        EntityTable {
            schema: self.schema,
            dicts: self.dicts,
            columns,
            rows: self.rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn restaurant_table() -> EntityTable {
        // Mirrors Figure 2's restaurant table.
        let mut schema = Schema::new();
        schema.add("cuisine", true);
        schema.add("state", false);
        schema.add("city", false);
        let mut b = EntityTableBuilder::new(schema);
        b.push_row(vec![
            Cell::Many(vec![Value::str("Burgers"), Value::str("Barbeque")]),
            "North Carolina".into(),
            "Charlotte".into(),
        ]);
        b.push_row(vec![
            Cell::Many(vec![Value::str("Japanese"), Value::str("Sushi")]),
            "Texas".into(),
            "Austin".into(),
        ]);
        b.push_row(vec![
            Cell::One(Value::str("Mexican")),
            "Michigan".into(),
            "Detroit".into(),
        ]);
        b.build()
    }

    #[test]
    fn build_and_access() {
        let t = restaurant_table();
        assert_eq!(t.len(), 3);
        let cuisine = t.schema().attr_by_name("cuisine").unwrap();
        let city = t.schema().attr_by_name("city").unwrap();
        assert_eq!(t.values(0, cuisine).len(), 2);
        assert_eq!(t.values(2, cuisine).len(), 1, "One on multi = singleton");
        assert_eq!(t.decoded_values(1, city), vec![Value::str("Austin")]);
    }

    #[test]
    fn row_has_checks_membership() {
        let t = restaurant_table();
        let cuisine = t.schema().attr_by_name("cuisine").unwrap();
        let sushi = t.dictionary(cuisine).code(&Value::str("Sushi")).unwrap();
        assert!(t.row_has(1, cuisine, sushi));
        assert!(!t.row_has(0, cuisine, sushi));
    }

    #[test]
    fn dictionaries_are_per_attribute() {
        let t = restaurant_table();
        let state = t.schema().attr_by_name("state").unwrap();
        let city = t.schema().attr_by_name("city").unwrap();
        assert_eq!(t.dictionary(state).len(), 3);
        assert_eq!(t.dictionary(city).len(), 3);
        assert!(t.dictionary(city).code(&Value::str("Texas")).is_none());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut schema = Schema::new();
        schema.add("a", false);
        let mut b = EntityTableBuilder::new(schema);
        b.push_row(vec![]);
    }

    #[test]
    #[should_panic(expected = "single-valued")]
    fn set_on_single_attr_panics() {
        let mut schema = Schema::new();
        schema.add("a", false);
        let mut b = EntityTableBuilder::new(schema);
        b.push_row(vec![Cell::Many(vec![Value::int(1), Value::int(2)])]);
    }

    #[test]
    fn empty_table() {
        let t = EntityTableBuilder::new(Schema::new()).build();
        assert!(t.is_empty());
    }
}
