//! Reviewer groups, item groups, and rating groups.
//!
//! A reviewer/item group is the set of rows matching a description (a set of
//! attribute–value pairs); the rating group for `(g_U, g_I)` contains every
//! rating record whose reviewer is in `g_U` and item in `g_I` (Section 3.1).
//!
//! Rating groups also own the *phase order*: the phase-based execution
//! framework (Algorithm 1) consumes the group in `n` equal fractions of a
//! uniformly random permutation, which is what makes the running criterion
//! estimates samples-without-replacement and the Hoeffding–Serfling bound
//! applicable.

use crate::bitset::BitSet;
use crate::ratings::RecordId;
use crate::scan::GroupColumns;
use crate::schema::Entity;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::ops::Range;

/// A set of reviewer or item rows selected by a description.
#[derive(Debug, Clone)]
pub struct EntityGroup {
    entity: Entity,
    members: BitSet,
}

impl EntityGroup {
    /// Wraps a member bitset.
    pub fn new(entity: Entity, members: BitSet) -> Self {
        Self { entity, members }
    }

    /// Which entity table this group selects from.
    pub fn entity(&self) -> Entity {
        self.entity
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, row: u32) -> bool {
        self.members.contains(row)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the group is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The underlying bitset.
    pub fn members(&self) -> &BitSet {
        &self.members
    }

    /// Member rows in ascending order.
    pub fn rows(&self) -> Vec<u32> {
        self.members.to_vec()
    }
}

/// A materialized rating group: the record ids linking a reviewer group to
/// an item group, in a deterministic shuffled order.
#[derive(Debug, Clone)]
pub struct RatingGroup {
    records: Vec<RecordId>,
    /// Pre-gathered `reviewer_of` column in phase order, when the group was
    /// built from [`GroupColumns`].
    reviewer_rows: Option<Vec<u32>>,
    /// Pre-gathered `item_of` column in phase order.
    item_rows: Option<Vec<u32>>,
}

impl RatingGroup {
    /// Creates a rating group and fixes its phase order by shuffling with
    /// the given seed. The shuffle is what turns phase-by-phase consumption
    /// into sampling without replacement.
    pub fn new(mut records: Vec<RecordId>, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        records.shuffle(&mut rng);
        Self {
            records,
            reviewer_rows: None,
            item_rows: None,
        }
    }

    /// Creates a rating group preserving the given order (tests, replays).
    pub fn with_order(records: Vec<RecordId>) -> Self {
        Self {
            records,
            reviewer_rows: None,
            item_rows: None,
        }
    }

    /// Creates a rating group from pre-gathered columns, applying this
    /// caller's phase-order shuffle to all three columns at once.
    ///
    /// The shuffle permutes an index vector with the given seed and gathers
    /// through it; because the vendored Fisher–Yates draws depend only on
    /// slice length, the resulting record order is byte-identical to
    /// [`RatingGroup::new`] with the same records and seed. This is what
    /// lets the group cache share one gather across sessions while each
    /// session keeps its own phase order.
    pub fn from_columns(cols: &GroupColumns, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut perm: Vec<u32> = (0..cols.records.len() as u32).collect();
        perm.shuffle(&mut rng);
        let records = perm.iter().map(|&i| cols.records[i as usize]).collect();
        let reviewer_rows = perm
            .iter()
            .map(|&i| cols.reviewer_rows[i as usize])
            .collect();
        let item_rows = perm.iter().map(|&i| cols.item_rows[i as usize]).collect();
        Self {
            records,
            reviewer_rows: Some(reviewer_rows),
            item_rows: Some(item_rows),
        }
    }

    /// The pre-gathered entity-row column of one side, in phase order, if
    /// the group was built from [`GroupColumns`].
    pub fn entity_rows(&self, entity: Entity) -> Option<&[u32]> {
        match entity {
            Entity::Reviewer => self.reviewer_rows.as_deref(),
            Entity::Item => self.item_rows.as_deref(),
        }
    }

    /// Whether the group carries pre-gathered entity-row columns.
    pub fn has_entity_rows(&self) -> bool {
        self.reviewer_rows.is_some() && self.item_rows.is_some()
    }

    /// All records in phase order.
    pub fn records(&self) -> &[RecordId] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the group is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Splits the group into `n` near-equal consecutive fractions — the
    /// `D_i` of Algorithm 1. Earlier fractions are never smaller than later
    /// ones by more than one record; empty trailing fractions occur when
    /// `n > len`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn phases(&self, n: usize) -> Vec<&[RecordId]> {
        self.phase_ranges(n)
            .into_iter()
            .map(|r| &self.records[r])
            .collect()
    }

    /// The index ranges of the `n` phase fractions — same partition as
    /// [`phases`](Self::phases), but as ranges so callers can slice every
    /// gathered column of the group, not just the record ids.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn phase_ranges(&self, n: usize) -> Vec<Range<usize>> {
        assert!(n > 0, "at least one phase");
        let len = self.records.len();
        let base = len / n;
        let extra = len % n;
        let mut out = Vec::with_capacity(n);
        let mut start = 0;
        for i in 0..n {
            let size = base + usize::from(i < extra);
            out.push(start..start + size);
            start += size;
        }
        debug_assert_eq!(start, len);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entity_group_basics() {
        let g = EntityGroup::new(Entity::Reviewer, BitSet::from_ids(10, &[1, 3, 7]));
        assert_eq!(g.entity(), Entity::Reviewer);
        assert_eq!(g.len(), 3);
        assert!(g.contains(3));
        assert!(!g.contains(2));
        assert_eq!(g.rows(), vec![1, 3, 7]);
    }

    #[test]
    fn shuffle_is_deterministic() {
        let a = RatingGroup::new((0..100).collect(), 7);
        let b = RatingGroup::new((0..100).collect(), 7);
        let c = RatingGroup::new((0..100).collect(), 8);
        assert_eq!(a.records(), b.records());
        assert_ne!(a.records(), c.records(), "different seed, different order");
        let mut sorted = a.records().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>(), "permutation");
    }

    #[test]
    fn phases_partition_everything() {
        let g = RatingGroup::new((0..103).collect(), 1);
        let phases = g.phases(10);
        assert_eq!(phases.len(), 10);
        let total: usize = phases.iter().map(|p| p.len()).sum();
        assert_eq!(total, 103);
        // Sizes differ by at most one and are non-increasing.
        let sizes: Vec<usize> = phases.iter().map(|p| p.len()).collect();
        assert!(sizes.windows(2).all(|w| w[0] >= w[1]));
        assert!(sizes[0] - sizes[9] <= 1);
    }

    #[test]
    fn phases_more_than_records() {
        let g = RatingGroup::new(vec![5, 6], 1);
        let phases = g.phases(5);
        let total: usize = phases.iter().map(|p| p.len()).sum();
        assert_eq!(total, 2);
        assert_eq!(phases.iter().filter(|p| p.is_empty()).count(), 3);
    }

    #[test]
    fn empty_group_phases() {
        let g = RatingGroup::new(vec![], 1);
        assert!(g.is_empty());
        let phases = g.phases(10);
        assert!(phases.iter().all(|p| p.is_empty()));
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn zero_phases_panics() {
        let g = RatingGroup::new(vec![1], 1);
        let _ = g.phases(0);
    }

    #[test]
    fn with_order_preserves() {
        let g = RatingGroup::with_order(vec![9, 1, 5]);
        assert_eq!(g.records(), &[9, 1, 5]);
        assert!(!g.has_entity_rows());
        assert!(g.entity_rows(Entity::Reviewer).is_none());
    }

    #[test]
    fn from_columns_matches_in_place_shuffle() {
        // The keystone of the cache refactor: permuting an index vector and
        // gathering must produce byte-identical record order to shuffling
        // the records in place with the same seed.
        for n in [0usize, 1, 2, 17, 100, 257] {
            let records: Vec<RecordId> = (0..n as u32).map(|i| i * 3 + 1).collect();
            let cols = GroupColumns {
                records: records.clone(),
                reviewer_rows: (0..n as u32).map(|i| i * 7).collect(),
                item_rows: (0..n as u32).map(|i| i + 42).collect(),
            };
            for seed in [0u64, 7, 0xdead_beef] {
                let direct = RatingGroup::new(records.clone(), seed);
                let gathered = RatingGroup::from_columns(&cols, seed);
                assert_eq!(direct.records(), gathered.records(), "n={n} seed={seed}");
            }
        }
    }

    #[test]
    fn from_columns_rows_track_records() {
        let records: Vec<RecordId> = (0..50).collect();
        let cols = GroupColumns {
            records: records.clone(),
            reviewer_rows: records.iter().map(|&r| r * 2).collect(),
            item_rows: records.iter().map(|&r| r + 100).collect(),
        };
        let g = RatingGroup::from_columns(&cols, 3);
        assert!(g.has_entity_rows());
        let rev = g.entity_rows(Entity::Reviewer).unwrap();
        let item = g.entity_rows(Entity::Item).unwrap();
        for (i, &rec) in g.records().iter().enumerate() {
            assert_eq!(rev[i], rec * 2, "reviewer row must follow its record");
            assert_eq!(item[i], rec + 100, "item row must follow its record");
        }
    }

    #[test]
    fn phase_ranges_match_phases() {
        let g = RatingGroup::new((0..103).collect(), 1);
        for n in [1, 3, 10, 200] {
            let ranges = g.phase_ranges(n);
            let phases = g.phases(n);
            assert_eq!(ranges.len(), phases.len());
            for (r, p) in ranges.into_iter().zip(phases) {
                assert_eq!(&g.records()[r], p);
            }
        }
    }
}
