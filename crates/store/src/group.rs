//! Reviewer groups, item groups, and rating groups.
//!
//! A reviewer/item group is the set of rows matching a description (a set of
//! attribute–value pairs); the rating group for `(g_U, g_I)` contains every
//! rating record whose reviewer is in `g_U` and item in `g_I` (Section 3.1).
//!
//! Rating groups also own the *phase order*: the phase-based execution
//! framework (Algorithm 1) consumes the group in `n` equal fractions of a
//! uniformly random permutation, which is what makes the running criterion
//! estimates samples-without-replacement and the Hoeffding–Serfling bound
//! applicable.

use crate::bitset::BitSet;
use crate::ratings::RecordId;
use crate::schema::Entity;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A set of reviewer or item rows selected by a description.
#[derive(Debug, Clone)]
pub struct EntityGroup {
    entity: Entity,
    members: BitSet,
}

impl EntityGroup {
    /// Wraps a member bitset.
    pub fn new(entity: Entity, members: BitSet) -> Self {
        Self { entity, members }
    }

    /// Which entity table this group selects from.
    pub fn entity(&self) -> Entity {
        self.entity
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, row: u32) -> bool {
        self.members.contains(row)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the group is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The underlying bitset.
    pub fn members(&self) -> &BitSet {
        &self.members
    }

    /// Member rows in ascending order.
    pub fn rows(&self) -> Vec<u32> {
        self.members.to_vec()
    }
}

/// A materialized rating group: the record ids linking a reviewer group to
/// an item group, in a deterministic shuffled order.
#[derive(Debug, Clone)]
pub struct RatingGroup {
    records: Vec<RecordId>,
}

impl RatingGroup {
    /// Creates a rating group and fixes its phase order by shuffling with
    /// the given seed. The shuffle is what turns phase-by-phase consumption
    /// into sampling without replacement.
    pub fn new(mut records: Vec<RecordId>, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        records.shuffle(&mut rng);
        Self { records }
    }

    /// Creates a rating group preserving the given order (tests, replays).
    pub fn with_order(records: Vec<RecordId>) -> Self {
        Self { records }
    }

    /// All records in phase order.
    pub fn records(&self) -> &[RecordId] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the group is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Splits the group into `n` near-equal consecutive fractions — the
    /// `D_i` of Algorithm 1. Earlier fractions are never smaller than later
    /// ones by more than one record; empty trailing fractions occur when
    /// `n > len`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn phases(&self, n: usize) -> Vec<&[RecordId]> {
        assert!(n > 0, "at least one phase");
        let len = self.records.len();
        let base = len / n;
        let extra = len % n;
        let mut out = Vec::with_capacity(n);
        let mut start = 0;
        for i in 0..n {
            let size = base + usize::from(i < extra);
            out.push(&self.records[start..start + size]);
            start += size;
        }
        debug_assert_eq!(start, len);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entity_group_basics() {
        let g = EntityGroup::new(Entity::Reviewer, BitSet::from_ids(10, &[1, 3, 7]));
        assert_eq!(g.entity(), Entity::Reviewer);
        assert_eq!(g.len(), 3);
        assert!(g.contains(3));
        assert!(!g.contains(2));
        assert_eq!(g.rows(), vec![1, 3, 7]);
    }

    #[test]
    fn shuffle_is_deterministic() {
        let a = RatingGroup::new((0..100).collect(), 7);
        let b = RatingGroup::new((0..100).collect(), 7);
        let c = RatingGroup::new((0..100).collect(), 8);
        assert_eq!(a.records(), b.records());
        assert_ne!(a.records(), c.records(), "different seed, different order");
        let mut sorted = a.records().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>(), "permutation");
    }

    #[test]
    fn phases_partition_everything() {
        let g = RatingGroup::new((0..103).collect(), 1);
        let phases = g.phases(10);
        assert_eq!(phases.len(), 10);
        let total: usize = phases.iter().map(|p| p.len()).sum();
        assert_eq!(total, 103);
        // Sizes differ by at most one and are non-increasing.
        let sizes: Vec<usize> = phases.iter().map(|p| p.len()).collect();
        assert!(sizes.windows(2).all(|w| w[0] >= w[1]));
        assert!(sizes[0] - sizes[9] <= 1);
    }

    #[test]
    fn phases_more_than_records() {
        let g = RatingGroup::new(vec![5, 6], 1);
        let phases = g.phases(5);
        let total: usize = phases.iter().map(|p| p.len()).sum();
        assert_eq!(total, 2);
        assert_eq!(phases.iter().filter(|p| p.is_empty()).count(), 3);
    }

    #[test]
    fn empty_group_phases() {
        let g = RatingGroup::new(vec![], 1);
        assert!(g.is_empty());
        let phases = g.phases(10);
        assert!(phases.iter().all(|p| p.is_empty()));
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn zero_phases_panics() {
        let g = RatingGroup::new(vec![1], 1);
        let _ = g.phases(0);
    }

    #[test]
    fn with_order_preserves() {
        let g = RatingGroup::with_order(vec![9, 1, 5]);
        assert_eq!(g.records(), &[9, 1, 5]);
    }
}
