//! Cache-line padding for concurrently-touched fields.
//!
//! The sharded caches put each shard's lock word and LRU state behind a
//! [`CachePadded`] wrapper so adjacent shards never share a cache line:
//! without padding, a `Box<[Shard]>` packs the `RwLock` words of all eight
//! shards into one or two lines, and every lock acquisition invalidates the
//! line for every *other* shard's waiters — false sharing that defeats the
//! point of sharding. The aggregate hit/miss/eviction atomics get the same
//! treatment; they are written on every lookup from every thread.

use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to the false-sharing granularity.
///
/// On `x86_64` the alignment is 128 bytes, not 64: the adjacent-line
/// prefetcher pulls cache lines in pairs, so two hot words 64 bytes apart
/// still ping-pong between cores. Elsewhere a single 64-byte line is used.
#[cfg_attr(target_arch = "x86_64", repr(align(128)))]
#[cfg_attr(not(target_arch = "x86_64"), repr(align(64)))]
#[derive(Debug, Default)]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in its own cache line (pair).
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Unwraps the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn alignment_is_at_least_a_cache_line() {
        assert!(std::mem::align_of::<CachePadded<u8>>() >= 64);
        assert!(std::mem::size_of::<CachePadded<u8>>() >= 64);
    }

    #[test]
    fn consecutive_array_elements_never_share_a_line() {
        let pair = [CachePadded::new(0u64), CachePadded::new(0u64)];
        let a = &*pair[0] as *const u64 as usize;
        let b = &*pair[1] as *const u64 as usize;
        assert!(b - a >= 64, "elements {a:#x} and {b:#x} share a line");
    }

    #[test]
    fn deref_round_trips() {
        let mut p = CachePadded::new(41u32);
        *p += 1;
        assert_eq!(*p, 42);
        assert_eq!(p.into_inner(), 42);
    }

    #[test]
    fn atomics_work_through_the_pad() {
        let c = CachePadded::new(AtomicU64::new(0));
        c.fetch_add(3, Ordering::Relaxed);
        assert_eq!(c.load(Ordering::Relaxed), 3);
    }
}
