//! Cross-step cache of exact map-distance values.
//!
//! The selection phase (GMM, Section 4.2.2) evaluates `O(k²·l)` exact EMD
//! transportation problems per step, and candidate pools overlap heavily
//! across consecutive steps of one session and across sessions exploring
//! the same dataset — the top-utility maps of a query change slowly as the
//! user drills down. [`DistanceCache`] memoizes the exact distance of a
//! *pair of rating maps*, keyed by order-normalized content hashes of the
//! two maps, so a distance computed once is reused by every later step and
//! session that meets the same pair.
//!
//! The cache lives in the store crate (alongside [`GroupCache`]) so it can
//! be shared service-wide behind an `Arc` without the storage layer
//! depending on the exploration engine; the engine supplies 128-bit content
//! hashes and receives `f64` distances. Keys are **content** hashes — two
//! maps with different identities but identical subgroup histograms
//! legitimately share an entry, because the distance depends only on the
//! histograms. The pair key is order-normalized (smaller hash first), and
//! the engine computes distances in the same canonical order, so cached
//! and freshly computed values agree bitwise regardless of argument order.
//!
//! Eviction is least-recently-used under a byte budget, mirroring
//! [`GroupCache`]; entries are tiny and uniform, so the budget is in effect
//! an entry-count bound.
//!
//! [`GroupCache`]: crate::cache::GroupCache

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::cache::CacheStats;

/// What one memoized distance charges against the byte budget: the pair key
/// (32 bytes), the value, LRU clock, and amortized hash-map slot overhead.
pub const DIST_ENTRY_BYTES: usize = 96;

/// An order-normalized pair of 128-bit map content hashes.
///
/// Constructed via [`DistanceCache::pair_key`]; the smaller hash always
/// comes first so `d(a, b)` and `d(b, a)` share one entry.
pub type DistPairKey = (u128, u128);

struct Entry {
    distance: f64,
    /// Logical clock value of the most recent touch.
    last_used: u64,
}

struct Inner {
    map: HashMap<DistPairKey, Entry>,
    /// Monotonic logical clock; bumped on every touch.
    tick: u64,
}

/// A thread-safe LRU memo of exact map distances, keyed by order-normalized
/// content-hash pairs and bounded by resident bytes.
///
/// Shared across sessions behind an `Arc`; all methods take `&self`.
pub struct DistanceCache {
    inner: Mutex<Inner>,
    capacity_bytes: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    rejected: AtomicU64,
    /// Database epoch the resident entries were computed against; see
    /// [`bump_epoch`](Self::bump_epoch).
    epoch: AtomicU64,
}

impl std::fmt::Debug for DistanceCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistanceCache")
            .field("capacity_bytes", &self.capacity_bytes)
            .field("stats", &self.stats())
            .finish()
    }
}

impl DistanceCache {
    /// Creates a cache bounded to roughly `capacity_bytes` of entries
    /// (each entry costs [`DIST_ENTRY_BYTES`]).
    pub fn new(capacity_bytes: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
            }),
            capacity_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
        }
    }

    /// The configured byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// The database epoch this cache's entries are valid for.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Invalidates every resident entry if `db_epoch` is newer than the
    /// epoch the entries were computed against. Keys are content hashes of
    /// rating maps, and appending ratings changes which maps exist for a
    /// query, so the persistence layer clears this cache alongside the
    /// [`GroupCache`](crate::cache::GroupCache) when it publishes an
    /// append. Counters are kept. Returns whether anything was dropped.
    pub fn bump_epoch(&self, db_epoch: u64) -> bool {
        if db_epoch <= self.epoch.load(Ordering::Relaxed) {
            return false;
        }
        let mut inner = self.inner.lock();
        // Re-check under the lock so racing bumps to the same epoch clear
        // once.
        if db_epoch <= self.epoch.load(Ordering::Relaxed) {
            return false;
        }
        self.epoch.store(db_epoch, Ordering::Relaxed);
        inner.map.clear();
        true
    }

    /// Normalizes two content hashes into the symmetric pair key.
    #[inline]
    pub fn pair_key(a: u128, b: u128) -> DistPairKey {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Looks up the memoized distance for a hash pair, counting a hit or a
    /// miss. The caller computes and [`insert`](Self::insert)s on a miss —
    /// lookup and insert are split (unlike `GroupCache::get_or_insert_with`)
    /// because the GMM update loop often *prunes* the pair via bounds after
    /// a miss, in which case there is no exact value to insert.
    pub fn get(&self, key: DistPairKey) -> Option<f64> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.map.get_mut(&key) {
            entry.last_used = tick;
            self.hits.fetch_add(1, Ordering::Relaxed);
            Some(entry.distance)
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            None
        }
    }

    /// Memoizes an exact distance, evicting LRU entries past the budget.
    /// A racing insert of the same key keeps the incumbent value (both
    /// racers computed the same canonical-order distance); the loser is
    /// counted as a rejected insert.
    pub fn insert(&self, key: DistPairKey, distance: f64) {
        debug_assert!(distance.is_finite() && distance >= 0.0);
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.get_mut().last_used = tick;
                self.rejected.fetch_add(1, Ordering::Relaxed);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(Entry {
                    distance,
                    last_used: tick,
                });
            }
        }
        let budget_entries = (self.capacity_bytes / DIST_ENTRY_BYTES).max(1);
        while inner.map.len() > budget_entries {
            let victim = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("map checked non-empty");
            inner.map.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Whether the pair currently has a resident entry (does not touch LRU
    /// state or counters; intended for tests and introspection).
    pub fn contains(&self, key: DistPairKey) -> bool {
        self.inner.lock().map.contains_key(&key)
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        self.inner.lock().map.clear();
    }

    /// A consistent snapshot of the effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        let entries = self.inner.lock().map.len();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            rejected_inserts: self.rejected.load(Ordering::Relaxed),
            entries,
            resident_bytes: entries * DIST_ENTRY_BYTES,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_key_is_order_normalized() {
        assert_eq!(DistanceCache::pair_key(7, 3), (3, 7));
        assert_eq!(DistanceCache::pair_key(3, 7), (3, 7));
        assert_eq!(DistanceCache::pair_key(5, 5), (5, 5));
    }

    #[test]
    fn miss_then_hit() {
        let cache = DistanceCache::new(10 * DIST_ENTRY_BYTES);
        let key = DistanceCache::pair_key(1, 2);
        assert_eq!(cache.get(key), None);
        cache.insert(key, 0.25);
        assert_eq!(cache.get(key), Some(0.25));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.resident_bytes, DIST_ENTRY_BYTES);
    }

    #[test]
    fn symmetric_lookups_share_an_entry() {
        let cache = DistanceCache::new(10 * DIST_ENTRY_BYTES);
        cache.insert(DistanceCache::pair_key(9, 4), 0.5);
        assert_eq!(cache.get(DistanceCache::pair_key(4, 9)), Some(0.5));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = DistanceCache::new(2 * DIST_ENTRY_BYTES);
        cache.insert((1, 2), 0.1);
        cache.insert((3, 4), 0.2);
        // Touch (1, 2) so (3, 4) is the LRU entry.
        assert_eq!(cache.get((1, 2)), Some(0.1));
        cache.insert((5, 6), 0.3);
        assert!(cache.contains((1, 2)), "recently used entry kept");
        assert!(!cache.contains((3, 4)), "LRU entry evicted");
        assert!(cache.contains((5, 6)));
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.stats().resident_bytes <= cache.capacity_bytes());
    }

    #[test]
    fn reinsert_keeps_incumbent_value_and_counts_rejection() {
        let cache = DistanceCache::new(10 * DIST_ENTRY_BYTES);
        cache.insert((1, 2), 0.1);
        cache.insert((1, 2), 0.9);
        assert_eq!(cache.get((1, 2)), Some(0.1));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().rejected_inserts, 1);
    }

    #[test]
    fn bump_epoch_invalidates_entries_once() {
        let cache = DistanceCache::new(10 * DIST_ENTRY_BYTES);
        cache.insert((1, 2), 0.1);
        assert!(!cache.bump_epoch(0), "stale bump is a no-op");
        assert!(cache.bump_epoch(2));
        assert!(cache.is_empty());
        assert_eq!(cache.epoch(), 2);
        assert!(!cache.bump_epoch(2), "repeat bump clears nothing");
        cache.insert((1, 2), 0.4);
        assert_eq!(cache.get((1, 2)), Some(0.4));
    }

    #[test]
    fn tiny_budget_still_holds_one_entry() {
        let cache = DistanceCache::new(1);
        cache.insert((1, 2), 0.1);
        assert_eq!(cache.get((1, 2)), Some(0.1));
        cache.insert((3, 4), 0.2);
        assert_eq!(cache.len(), 1, "budget floor is one entry");
    }

    #[test]
    fn clear_resets_entries_but_keeps_counters() {
        let cache = DistanceCache::new(10 * DIST_ENTRY_BYTES);
        cache.insert((1, 2), 0.1);
        let _ = cache.get((1, 2));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().resident_bytes, 0);
    }
}
