//! Cross-step cache of exact map-distance values.
//!
//! The selection phase (GMM, Section 4.2.2) evaluates `O(k²·l)` exact EMD
//! transportation problems per step, and candidate pools overlap heavily
//! across consecutive steps of one session and across sessions exploring
//! the same dataset — the top-utility maps of a query change slowly as the
//! user drills down. [`DistanceCache`] memoizes the exact distance of a
//! *pair of rating maps*, keyed by order-normalized content hashes of the
//! two maps, so a distance computed once is reused by every later step and
//! session that meets the same pair.
//!
//! The cache lives in the store crate (alongside [`GroupCache`]) so it can
//! be shared service-wide behind an `Arc` without the storage layer
//! depending on the exploration engine; the engine supplies 128-bit content
//! hashes and receives `f64` distances. Keys are **content** hashes — two
//! maps with different identities but identical subgroup histograms
//! legitimately share an entry, because the distance depends only on the
//! histograms. The pair key is order-normalized (smaller hash first), and
//! the engine computes distances in the same canonical order, so cached
//! and freshly computed values agree bitwise regardless of argument order.
//!
//! Like [`GroupCache`], the map is split into power-of-two **shards** —
//! selected by an FNV-1a hash of the 32-byte pair key — each with its own
//! lock and its own slice of the entry budget, so the per-pair lookups the
//! GMM loop issues from concurrent sessions stop serializing on one global
//! mutex. Eviction is least-recently-used per shard under the shard's
//! budget slice; entries are tiny and uniform, so the budget is in effect
//! an entry-count bound.
//!
//! [`GroupCache`]: crate::cache::GroupCache

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use crate::cache::{CacheStats, DEFAULT_CACHE_SHARDS};
use crate::pad::CachePadded;

/// What one memoized distance charges against the byte budget: the pair key
/// (32 bytes), the value, LRU clock, and amortized hash-map slot overhead.
pub const DIST_ENTRY_BYTES: usize = 96;

/// An order-normalized pair of 128-bit map content hashes.
///
/// Constructed via [`DistanceCache::pair_key`]; the smaller hash always
/// comes first so `d(a, b)` and `d(b, a)` share one entry.
pub type DistPairKey = (u128, u128);

struct Entry {
    distance: f64,
    /// Logical clock value of the most recent touch (per shard).
    last_used: u64,
}

struct Inner {
    map: HashMap<DistPairKey, Entry>,
    /// Monotonic logical clock; bumped on every touch. Per-shard — LRU
    /// only ever compares entries within one shard.
    tick: u64,
}

/// One shard, padded to its own cache line (pair); see the rationale on
/// [`CachePadded`] — the GMM loop hammers `get`/`insert` from every worker,
/// so adjacent shards' lock words must not share a line.
struct Shard {
    inner: CachePadded<RwLock<Inner>>,
}

impl Shard {
    fn new() -> Self {
        Self {
            inner: CachePadded::new(RwLock::new(Inner {
                map: HashMap::new(),
                tick: 0,
            })),
        }
    }
}

/// A thread-safe sharded LRU memo of exact map distances, keyed by
/// order-normalized content-hash pairs and bounded by resident bytes.
///
/// Shared across sessions behind an `Arc`; all methods take `&self`.
pub struct DistanceCache {
    shards: Box<[Shard]>,
    /// `shards.len() - 1`; the key-hash mask selecting a shard.
    shard_mask: u64,
    capacity_bytes: usize,
    /// Entry budget per shard (the byte budget split evenly, floored at one
    /// entry so a tiny cache still memoizes something).
    shard_budget_entries: usize,
    // Aggregate counters on private cache lines — bumped on every lookup
    // from every thread (see the field comments on `GroupCache`).
    hits: CachePadded<AtomicU64>,
    misses: CachePadded<AtomicU64>,
    evictions: CachePadded<AtomicU64>,
    rejected: CachePadded<AtomicU64>,
    /// Database epoch the resident entries were computed against; see
    /// [`bump_epoch`](Self::bump_epoch).
    epoch: CachePadded<AtomicU64>,
}

impl std::fmt::Debug for DistanceCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistanceCache")
            .field("capacity_bytes", &self.capacity_bytes)
            .field("shards", &self.shards.len())
            .field("stats", &self.stats())
            .finish()
    }
}

/// FNV-1a over the 32 bytes of the order-normalized pair key. The content
/// hashes are already well-mixed, but folding both halves keeps shard
/// selection balanced even if callers key on low-entropy hashes.
fn shard_hash(key: &DistPairKey) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for half in [key.0, key.1] {
        for chunk in [half as u64, (half >> 64) as u64] {
            h ^= chunk;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

impl DistanceCache {
    /// Creates a cache bounded to roughly `capacity_bytes` of entries (each
    /// entry costs [`DIST_ENTRY_BYTES`]), with [`DEFAULT_CACHE_SHARDS`]
    /// shards.
    pub fn new(capacity_bytes: usize) -> Self {
        Self::with_shards(capacity_bytes, DEFAULT_CACHE_SHARDS)
    }

    /// Creates a cache with an explicit shard count (power of two). Each
    /// shard gets an even slice of the entry budget.
    ///
    /// # Panics
    /// If `shards` is not a power of two.
    pub fn with_shards(capacity_bytes: usize, shards: usize) -> Self {
        assert!(
            shards.is_power_of_two(),
            "shard count must be a power of two"
        );
        Self {
            shards: (0..shards).map(|_| Shard::new()).collect(),
            shard_mask: (shards - 1) as u64,
            capacity_bytes,
            shard_budget_entries: (capacity_bytes / shards / DIST_ENTRY_BYTES).max(1),
            hits: CachePadded::new(AtomicU64::new(0)),
            misses: CachePadded::new(AtomicU64::new(0)),
            evictions: CachePadded::new(AtomicU64::new(0)),
            rejected: CachePadded::new(AtomicU64::new(0)),
            epoch: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// The configured byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// The number of shards the key space is split across.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The database epoch this cache's entries are valid for.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    fn shard_of(&self, key: &DistPairKey) -> &Shard {
        &self.shards[(shard_hash(key) & self.shard_mask) as usize]
    }

    /// Invalidates every resident entry if `db_epoch` is newer than the
    /// epoch the entries were computed against. Keys are content hashes of
    /// rating maps, and appending ratings changes which maps exist for a
    /// query, so the persistence layer clears this cache alongside the
    /// [`GroupCache`](crate::cache::GroupCache) when it publishes an
    /// append. Counters are kept. Returns whether the epoch advanced
    /// (racing bumps to the same epoch advance once).
    pub fn bump_epoch(&self, db_epoch: u64) -> bool {
        if self.epoch.fetch_max(db_epoch, Ordering::Relaxed) >= db_epoch {
            return false;
        }
        for shard in self.shards.iter() {
            shard.inner.write().map.clear();
        }
        true
    }

    /// Normalizes two content hashes into the symmetric pair key.
    #[inline]
    pub fn pair_key(a: u128, b: u128) -> DistPairKey {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Looks up the memoized distance for a hash pair, counting a hit or a
    /// miss. The caller computes and [`insert`](Self::insert)s on a miss —
    /// lookup and insert are split (unlike `GroupCache::get_or_insert_with`)
    /// because the GMM update loop often *prunes* the pair via bounds after
    /// a miss, in which case there is no exact value to insert.
    pub fn get(&self, key: DistPairKey) -> Option<f64> {
        let mut inner = self.shard_of(&key).inner.write();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.map.get_mut(&key) {
            entry.last_used = tick;
            self.hits.fetch_add(1, Ordering::Relaxed);
            Some(entry.distance)
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            None
        }
    }

    /// Memoizes an exact distance, evicting the shard's LRU entries past
    /// its budget slice. A racing insert of the same key keeps the
    /// incumbent value (both racers computed the same canonical-order
    /// distance); the loser is counted as a rejected insert.
    pub fn insert(&self, key: DistPairKey, distance: f64) {
        debug_assert!(distance.is_finite() && distance >= 0.0);
        let mut inner = self.shard_of(&key).inner.write();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.get_mut().last_used = tick;
                self.rejected.fetch_add(1, Ordering::Relaxed);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(Entry {
                    distance,
                    last_used: tick,
                });
            }
        }
        while inner.map.len() > self.shard_budget_entries {
            let victim = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("map checked non-empty");
            inner.map.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Whether the pair currently has a resident entry (does not touch LRU
    /// state or counters; intended for tests and introspection). One shared
    /// read lock on the pair's shard — never the whole cache.
    pub fn contains(&self, key: DistPairKey) -> bool {
        self.shard_of(&key).inner.read().map.contains_key(&key)
    }

    /// Number of resident entries: one shared read acquisition per shard.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.inner.read().map.len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard.inner.write().map.clear();
        }
    }

    /// A snapshot of the effectiveness counters: atomics plus one shared
    /// read acquisition per shard.
    pub fn stats(&self) -> CacheStats {
        let entries = self.len();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            rejected_inserts: self.rejected.load(Ordering::Relaxed),
            entries,
            resident_bytes: entries * DIST_ENTRY_BYTES,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Single-shard cache: the LRU/entry-count pins below assume one budget
    /// slice covering the whole capacity.
    fn unsharded(capacity_bytes: usize) -> DistanceCache {
        DistanceCache::with_shards(capacity_bytes, 1)
    }

    #[test]
    fn pair_key_is_order_normalized() {
        assert_eq!(DistanceCache::pair_key(7, 3), (3, 7));
        assert_eq!(DistanceCache::pair_key(3, 7), (3, 7));
        assert_eq!(DistanceCache::pair_key(5, 5), (5, 5));
    }

    #[test]
    fn miss_then_hit() {
        let cache = DistanceCache::new(10 * DIST_ENTRY_BYTES * DEFAULT_CACHE_SHARDS);
        let key = DistanceCache::pair_key(1, 2);
        assert_eq!(cache.get(key), None);
        cache.insert(key, 0.25);
        assert_eq!(cache.get(key), Some(0.25));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.resident_bytes, DIST_ENTRY_BYTES);
    }

    #[test]
    fn symmetric_lookups_share_an_entry() {
        let cache = DistanceCache::new(10 * DIST_ENTRY_BYTES * DEFAULT_CACHE_SHARDS);
        cache.insert(DistanceCache::pair_key(9, 4), 0.5);
        assert_eq!(cache.get(DistanceCache::pair_key(4, 9)), Some(0.5));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = unsharded(2 * DIST_ENTRY_BYTES);
        cache.insert((1, 2), 0.1);
        cache.insert((3, 4), 0.2);
        // Touch (1, 2) so (3, 4) is the LRU entry.
        assert_eq!(cache.get((1, 2)), Some(0.1));
        cache.insert((5, 6), 0.3);
        assert!(cache.contains((1, 2)), "recently used entry kept");
        assert!(!cache.contains((3, 4)), "LRU entry evicted");
        assert!(cache.contains((5, 6)));
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.stats().resident_bytes <= cache.capacity_bytes());
    }

    #[test]
    fn reinsert_keeps_incumbent_value_and_counts_rejection() {
        let cache = DistanceCache::new(10 * DIST_ENTRY_BYTES * DEFAULT_CACHE_SHARDS);
        cache.insert((1, 2), 0.1);
        cache.insert((1, 2), 0.9);
        assert_eq!(cache.get((1, 2)), Some(0.1));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().rejected_inserts, 1);
    }

    #[test]
    fn bump_epoch_invalidates_entries_once() {
        let cache = DistanceCache::new(10 * DIST_ENTRY_BYTES * DEFAULT_CACHE_SHARDS);
        cache.insert((1, 2), 0.1);
        assert!(!cache.bump_epoch(0), "stale bump is a no-op");
        assert!(cache.bump_epoch(2));
        assert!(cache.is_empty());
        assert_eq!(cache.epoch(), 2);
        assert!(!cache.bump_epoch(2), "repeat bump clears nothing");
        cache.insert((1, 2), 0.4);
        assert_eq!(cache.get((1, 2)), Some(0.4));
    }

    #[test]
    fn tiny_budget_still_holds_one_entry() {
        let cache = unsharded(1);
        cache.insert((1, 2), 0.1);
        assert_eq!(cache.get((1, 2)), Some(0.1));
        cache.insert((3, 4), 0.2);
        assert_eq!(cache.len(), 1, "budget floor is one entry");
    }

    #[test]
    fn clear_resets_entries_but_keeps_counters() {
        let cache = DistanceCache::new(10 * DIST_ENTRY_BYTES * DEFAULT_CACHE_SHARDS);
        cache.insert((1, 2), 0.1);
        let _ = cache.get((1, 2));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().resident_bytes, 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn shard_count_must_be_a_power_of_two() {
        let _ = DistanceCache::with_shards(1 << 20, 6);
    }

    #[test]
    fn sharded_cache_spreads_entries_and_keeps_aggregates() {
        let cache = DistanceCache::new(64 * DIST_ENTRY_BYTES * DEFAULT_CACHE_SHARDS);
        for i in 0..64u128 {
            cache.insert(DistanceCache::pair_key(i, i + 1), i as f64 / 64.0);
        }
        assert_eq!(cache.len(), 64, "ample budget: nothing evicted");
        for i in 0..64u128 {
            assert_eq!(
                cache.get(DistanceCache::pair_key(i + 1, i)),
                Some(i as f64 / 64.0),
                "symmetric lookup hits across shards"
            );
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (64, 0));
        assert_eq!(stats.entries, 64);
    }
}
