//! # subdex-store
//!
//! Columnar storage and query substrate for subjective databases
//! (Section 3.1 of the paper).
//!
//! A subjective database `D = ⟨I, U, R⟩` holds an item table, a reviewer
//! table — both with *objective* attributes, possibly multi-valued — and a
//! rating-record table whose *subjective* attributes are the per-dimension
//! scores reviewers assigned to items.
//!
//! Layout decisions (see `DESIGN.md`):
//!
//! * every objective attribute is dictionary-encoded ([`value::Dictionary`]);
//!   rows store `u32` codes, so scans touch only dense code vectors;
//! * multi-valued attributes (e.g. `cuisine = {Burgers, Barbeque}`) use a
//!   CSR (offsets + codes) layout ([`column::Column`]);
//! * the rating table is struct-of-arrays: one contiguous `Vec<u8>` per
//!   rating dimension ([`ratings::RatingTable`]);
//! * per attribute-value postings live in compressed hybrid containers
//!   (sorted array / packed bitmap / run-length, byte-minimal per value)
//!   whose kernel-driven intersections answer conjunctive selections
//!   ([`cindex`], [`bitset::BitSet`]; the flat [`index`] remains the
//!   build/serialization intermediate);
//! * rating groups materialize as record-id vectors with a deterministic
//!   shuffle, providing the without-replacement sample order required by the
//!   phase-based execution framework ([`group::RatingGroup::phases`]);
//! * the phased scan consumes **gathered columnar blocks** — entity-row
//!   indices resolved once per side plus contiguous per-dimension score
//!   buffers ([`scan`]) — built from reusable buffers so steady-state steps
//!   allocate nothing.

pub mod bitset;
pub mod cache;
pub mod cindex;
pub mod column;
pub mod csv;
pub mod database;
pub mod distcache;
pub mod error;
pub mod group;
pub mod index;
pub mod pad;
pub mod parse;
pub mod predicate;
pub mod ratings;
pub mod scan;
pub mod schema;
pub mod table;
pub mod value;

pub use cache::{CacheStats, GroupCache, DEFAULT_CACHE_SHARDS};
pub use cindex::{CompressedIndex, Container, ContainerStats, MemberSet};
pub use column::{Column, CsrColumn};
pub use database::{AttributeSummary, DbStats, GroupRoute, IndexStats, SubjectiveDb};
pub use distcache::{DistPairKey, DistanceCache};
pub use error::{StoreError, StoreErrorKind};
pub use group::{EntityGroup, RatingGroup};
pub use index::InvertedIndex;
pub use pad::CachePadded;
pub use parse::{parse_query, ParseError};
pub use predicate::{AttrValue, SelectionQuery};
pub use ratings::{DimId, RatingDraft, RatingTable, RatingTableBuilder, RecordId};
pub use scan::{GroupColumns, ScanBlock, ScanScratch};
pub use schema::{AttrId, Entity, Schema};
pub use table::{Cell, EntityTable, EntityTableBuilder};
pub use value::{Dictionary, Value, ValueId};

/// Compile-time proof that the shared query substrate is safe to use from
/// many threads: the service hands `Arc<SubjectiveDb>` and `Arc<GroupCache>`
/// to every worker, which requires `Send + Sync` on both.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SubjectiveDb>();
    assert_send_sync::<GroupCache>();
    assert_send_sync::<DistanceCache>();
    assert_send_sync::<RatingGroup>();
    assert_send_sync::<SelectionQuery>();
};
