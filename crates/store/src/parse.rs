//! Textual selection queries — the "advanced screen" of the paper's UI,
//! where users type SQL-style predicates instead of using drop-downs.
//!
//! Grammar (case-insensitive keywords, whitespace-tolerant):
//!
//! ```text
//! query  := '*' | pred ( 'AND' pred )*
//! pred   := side '.' attr '=' value
//! side   := 'reviewer' | 'item'
//! value  := bareword | 'quoted string' | integer
//! ```
//!
//! The format round-trips with [`SubjectiveDb::describe_query`], so logs
//! and replays are human-readable.

use crate::database::SubjectiveDb;
use crate::predicate::SelectionQuery;
use crate::schema::Entity;
use crate::value::Value;

/// Errors from parsing a textual query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A predicate was not of the form `side.attr = value`.
    Malformed {
        /// The offending fragment.
        fragment: String,
    },
    /// The entity prefix was neither `reviewer` nor `item`.
    BadEntity {
        /// The offending prefix.
        prefix: String,
    },
    /// The named attribute does not exist on that entity.
    UnknownAttribute {
        /// Entity searched.
        entity: Entity,
        /// Attribute name.
        name: String,
    },
    /// The value does not occur in the attribute's dictionary.
    UnknownValue {
        /// Attribute name.
        attr: String,
        /// Value text.
        value: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Malformed { fragment } => {
                write!(
                    f,
                    "malformed predicate: '{fragment}' (expected side.attr = value)"
                )
            }
            ParseError::BadEntity { prefix } => {
                write!(f, "unknown entity '{prefix}' (expected reviewer or item)")
            }
            ParseError::UnknownAttribute { entity, name } => {
                write!(f, "no attribute '{name}' on the {entity} table")
            }
            ParseError::UnknownValue { attr, value } => {
                write!(f, "value '{value}' never occurs for attribute '{attr}'")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses one value token: quoted → string, integer-looking → `Int`,
/// otherwise bare string.
fn parse_value(token: &str) -> Value {
    let t = token.trim();
    if t.len() >= 2
        && (t.starts_with('\'') && t.ends_with('\'') || t.starts_with('"') && t.ends_with('"'))
    {
        return Value::str(&t[1..t.len() - 1]);
    }
    match t.parse::<i64>() {
        Ok(i) => Value::Int(i),
        Err(_) => Value::str(t),
    }
}

/// Parses a textual query against a database (attribute and value names
/// are resolved through its schemas and dictionaries).
///
/// ```
/// use subdex_store::{parse_query, Cell, EntityTableBuilder, RatingTableBuilder, Schema, SubjectiveDb};
/// let mut us = Schema::new();
/// us.add("age_group", false);
/// let mut ub = EntityTableBuilder::new(us);
/// ub.push_row(vec![Cell::from("young")]);
/// let mut is = Schema::new();
/// is.add("city", false);
/// let mut ib = EntityTableBuilder::new(is);
/// ib.push_row(vec![Cell::from("NYC")]);
/// let mut rb = RatingTableBuilder::new(vec!["overall".into()], 5);
/// rb.push(0, 0, &[4]);
/// let db = SubjectiveDb::new(ub.build(), ib.build(), rb.build(1, 1));
///
/// let q = parse_query(&db, "reviewer.age_group = young AND item.city = NYC").unwrap();
/// assert_eq!(q.len(), 2);
/// assert_eq!(db.describe_query(&q), "reviewer.age_group = young AND item.city = NYC");
/// ```
pub fn parse_query(db: &SubjectiveDb, text: &str) -> Result<SelectionQuery, ParseError> {
    let text = text.trim();
    if text.is_empty() || text == "*" {
        return Ok(SelectionQuery::all());
    }
    let mut query = SelectionQuery::all();
    // Split on AND, case-insensitively, outside quotes (values in this
    // grammar cannot contain the word AND surrounded by spaces unless
    // quoted — good enough for the UI's predicates).
    for fragment in split_and(text) {
        let fragment = fragment.trim();
        let Some((lhs, rhs)) = fragment.split_once('=') else {
            return Err(ParseError::Malformed {
                fragment: fragment.to_owned(),
            });
        };
        let lhs = lhs.trim();
        let Some((prefix, attr_name)) = lhs.split_once('.') else {
            return Err(ParseError::Malformed {
                fragment: fragment.to_owned(),
            });
        };
        let entity = match prefix.trim().to_ascii_lowercase().as_str() {
            "reviewer" | "user" | "u" => Entity::Reviewer,
            "item" | "i" => Entity::Item,
            other => {
                return Err(ParseError::BadEntity {
                    prefix: other.to_owned(),
                })
            }
        };
        let attr_name = attr_name.trim();
        let table = db.table(entity);
        let Some(attr) = table.schema().attr_by_name(attr_name) else {
            return Err(ParseError::UnknownAttribute {
                entity,
                name: attr_name.to_owned(),
            });
        };
        let value = parse_value(rhs);
        let Some(code) = table.dictionary(attr).code(&value) else {
            return Err(ParseError::UnknownValue {
                attr: attr_name.to_owned(),
                value: value.to_string(),
            });
        };
        query.add(crate::predicate::AttrValue::new(entity, attr, code));
    }
    Ok(query)
}

/// Splits on the keyword AND outside quotes.
fn split_and(text: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_quote: Option<char> = None;
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match in_quote {
            Some(q) => {
                cur.push(c);
                if c == q {
                    in_quote = None;
                }
                i += 1;
            }
            None => {
                if c == '\'' || c == '"' {
                    in_quote = Some(c);
                    cur.push(c);
                    i += 1;
                } else if (c == 'a' || c == 'A')
                    && i + 3 <= chars.len()
                    && chars[i..i + 3]
                        .iter()
                        .collect::<String>()
                        .eq_ignore_ascii_case("and")
                    && (i == 0 || chars[i - 1].is_whitespace())
                    && (i + 3 == chars.len() || chars[i + 3].is_whitespace())
                {
                    parts.push(std::mem::take(&mut cur));
                    i += 3;
                } else {
                    cur.push(c);
                    i += 1;
                }
            }
        }
    }
    parts.push(cur);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratings::RatingTableBuilder;
    use crate::schema::Schema;
    use crate::table::{Cell, EntityTableBuilder};

    fn db() -> SubjectiveDb {
        let mut us = Schema::new();
        us.add("age_group", false);
        let mut ub = EntityTableBuilder::new(us);
        ub.push_row(vec![Cell::from("young")]);
        ub.push_row(vec![Cell::from("old")]);
        let mut is = Schema::new();
        is.add("city", false);
        is.add("year", false);
        let mut ib = EntityTableBuilder::new(is);
        ib.push_row(vec![Cell::from("New York, NY"), Cell::from(1999i64)]);
        ib.push_row(vec![Cell::from("SF"), Cell::from(2005i64)]);
        let mut rb = RatingTableBuilder::new(vec!["overall".into()], 5);
        rb.push(0, 0, &[5]);
        rb.push(1, 1, &[2]);
        SubjectiveDb::new(ub.build(), ib.build(), rb.build(2, 2))
    }

    #[test]
    fn star_parses_to_all() {
        let db = db();
        assert_eq!(parse_query(&db, "*").unwrap(), SelectionQuery::all());
        assert_eq!(parse_query(&db, "  ").unwrap(), SelectionQuery::all());
    }

    #[test]
    fn single_predicate() {
        let db = db();
        let q = parse_query(&db, "reviewer.age_group = young").unwrap();
        assert_eq!(q.len(), 1);
        assert_eq!(db.rating_group(&q, 0).len(), 1);
    }

    #[test]
    fn conjunction_and_case_insensitivity() {
        let db = db();
        let q = parse_query(&db, "reviewer.age_group = young AnD item.year = 1999").unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(db.rating_group(&q, 0).len(), 1);
    }

    #[test]
    fn quoted_values_with_spaces_and_commas() {
        let db = db();
        let q = parse_query(&db, "item.city = 'New York, NY'").unwrap();
        assert_eq!(q.len(), 1);
        let g = db.select_group(Entity::Item, &q);
        assert_eq!(g.rows(), vec![0]);
    }

    #[test]
    fn integers_resolve_typed() {
        let db = db();
        let q = parse_query(&db, "item.year = 2005").unwrap();
        assert_eq!(db.select_group(Entity::Item, &q).rows(), vec![1]);
    }

    #[test]
    fn round_trips_with_describe_query() {
        let db = db();
        let q = parse_query(&db, "reviewer.age_group = young AND item.year = 1999").unwrap();
        let text = db.describe_query(&q);
        let q2 = parse_query(&db, &text).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn entity_aliases() {
        let db = db();
        assert!(parse_query(&db, "user.age_group = young").is_ok());
        assert!(parse_query(&db, "i.city = SF").is_ok());
    }

    #[test]
    fn error_cases() {
        let db = db();
        assert!(matches!(
            parse_query(&db, "nonsense"),
            Err(ParseError::Malformed { .. })
        ));
        assert!(matches!(
            parse_query(&db, "restaurant.city = SF"),
            Err(ParseError::BadEntity { .. })
        ));
        assert!(matches!(
            parse_query(&db, "item.nope = SF"),
            Err(ParseError::UnknownAttribute { .. })
        ));
        assert!(matches!(
            parse_query(&db, "item.city = Atlantis"),
            Err(ParseError::UnknownValue { .. })
        ));
        // Display impls render something useful.
        let e = parse_query(&db, "item.city = Atlantis").unwrap_err();
        assert!(e.to_string().contains("Atlantis"));
    }
}
