//! Score normalization.
//!
//! The paper's four interestingness criteria live on wildly different scales
//! (Figure 3 shows raw conciseness 16.6–33.3 next to agreement 0.74–0.76),
//! so "we normalize them as proposed in \[51\]" (Somech et al.), which
//! standardizes each measure against the distribution of scores it has
//! produced so far and maps the z-score through a logistic squash. A plain
//! min–max normalizer is also provided for the ablation study.

use crate::moments::RunningMoments;
use serde::{Deserialize, Serialize};

/// A stateful normalizer mapping raw criterion scores into `[0, 1]`.
///
/// Normalizers are *per criterion*: each of conciseness / agreement /
/// self-peculiarity / global-peculiarity owns one, fed by every raw score
/// that criterion produces, so scores become comparable across criteria.
pub trait Normalizer: Send {
    /// Records a raw score observation (updates internal statistics).
    fn observe(&mut self, raw: f64);
    /// Maps a raw score to `[0, 1]` using the statistics gathered so far.
    fn normalize(&self, raw: f64) -> f64;
    /// Convenience: observe then normalize.
    fn observe_and_normalize(&mut self, raw: f64) -> f64 {
        self.observe(raw);
        self.normalize(raw)
    }
}

/// Z-score + logistic normalizer, following \[51\]: raw scores are
/// standardized against running moments and squashed by the logistic
/// function `1 / (1 + e^(−z))`, giving a smooth, outlier-robust `[0, 1]`
/// scale where 0.5 means "average interestingness so far".
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ZLogisticNormalizer {
    moments: RunningMoments,
}

impl ZLogisticNormalizer {
    /// Creates an empty normalizer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Normalizer for ZLogisticNormalizer {
    fn observe(&mut self, raw: f64) {
        if raw.is_finite() {
            self.moments.push(raw);
        }
    }

    fn normalize(&self, raw: f64) -> f64 {
        if !raw.is_finite() {
            return if raw == f64::INFINITY { 1.0 } else { 0.0 };
        }
        let Some(mean) = self.moments.mean() else {
            return 0.5;
        };
        let sd = self.moments.std_dev().unwrap_or(0.0);
        if sd <= f64::EPSILON {
            // All observations identical: everything is "average".
            return 0.5;
        }
        let z = (raw - mean) / sd;
        1.0 / (1.0 + (-z).exp())
    }
}

/// Min–max normalizer: maps raw scores linearly onto `[0, 1]` using the
/// extremes observed so far. Simple, but sensitive to outliers; used by the
/// normalization ablation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MinMaxNormalizer {
    moments: RunningMoments,
}

impl MinMaxNormalizer {
    /// Creates an empty normalizer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Normalizer for MinMaxNormalizer {
    fn observe(&mut self, raw: f64) {
        if raw.is_finite() {
            self.moments.push(raw);
        }
    }

    fn normalize(&self, raw: f64) -> f64 {
        if !raw.is_finite() {
            return if raw == f64::INFINITY { 1.0 } else { 0.0 };
        }
        let (Some(min), Some(max)) = (self.moments.min(), self.moments.max()) else {
            return 0.5;
        };
        if (max - min).abs() <= f64::EPSILON {
            return 0.5;
        }
        ((raw - min) / (max - min)).clamp(0.0, 1.0)
    }
}

/// Which normalizer family to instantiate (engine configuration knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum NormalizerKind {
    /// Z-score + logistic (the paper's choice via \[51\]).
    #[default]
    ZLogistic,
    /// Running min–max.
    MinMax,
}

impl NormalizerKind {
    /// Instantiates a fresh normalizer of this kind.
    pub fn build(self) -> Box<dyn Normalizer> {
        match self {
            NormalizerKind::ZLogistic => Box::new(ZLogisticNormalizer::new()),
            NormalizerKind::MinMax => Box::new(MinMaxNormalizer::new()),
        }
    }

    /// Instantiates a fresh cloneable normalizer of this kind.
    pub fn build_enum(self) -> ScoreNormalizer {
        match self {
            NormalizerKind::ZLogistic => ScoreNormalizer::ZLogistic(ZLogisticNormalizer::new()),
            NormalizerKind::MinMax => ScoreNormalizer::MinMax(MinMaxNormalizer::new()),
        }
    }
}

/// A concrete, cloneable normalizer.
///
/// The exploration engine snapshots normalizer state when evaluating
/// candidate next-step operations in parallel worker threads; an enum (vs a
/// boxed trait object) makes that snapshot a trivial `Clone`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ScoreNormalizer {
    /// See [`ZLogisticNormalizer`].
    ZLogistic(ZLogisticNormalizer),
    /// See [`MinMaxNormalizer`].
    MinMax(MinMaxNormalizer),
}

impl Normalizer for ScoreNormalizer {
    fn observe(&mut self, raw: f64) {
        match self {
            ScoreNormalizer::ZLogistic(n) => n.observe(raw),
            ScoreNormalizer::MinMax(n) => n.observe(raw),
        }
    }

    fn normalize(&self, raw: f64) -> f64 {
        match self {
            ScoreNormalizer::ZLogistic(n) => n.normalize(raw),
            ScoreNormalizer::MinMax(n) => n.normalize(raw),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zlogistic_unobserved_is_half() {
        let n = ZLogisticNormalizer::new();
        assert_eq!(n.normalize(7.0), 0.5);
    }

    #[test]
    fn zlogistic_orders_scores() {
        let mut n = ZLogisticNormalizer::new();
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            n.observe(x);
        }
        let low = n.normalize(1.0);
        let mid = n.normalize(3.0);
        let high = n.normalize(5.0);
        assert!(low < mid && mid < high);
        assert!((mid - 0.5).abs() < 1e-12, "mean maps to 0.5");
        assert!(low > 0.0 && high < 1.0);
    }

    #[test]
    fn zlogistic_constant_observations() {
        let mut n = ZLogisticNormalizer::new();
        for _ in 0..10 {
            n.observe(4.0);
        }
        assert_eq!(n.normalize(4.0), 0.5);
        assert_eq!(n.normalize(100.0), 0.5);
    }

    #[test]
    fn zlogistic_handles_infinities() {
        let mut n = ZLogisticNormalizer::new();
        n.observe(f64::INFINITY); // ignored
        n.observe(1.0);
        n.observe(2.0);
        assert_eq!(n.normalize(f64::INFINITY), 1.0);
        assert_eq!(n.normalize(f64::NEG_INFINITY), 0.0);
    }

    #[test]
    fn minmax_maps_extremes() {
        let mut n = MinMaxNormalizer::new();
        for x in [10.0, 20.0, 30.0] {
            n.observe(x);
        }
        assert_eq!(n.normalize(10.0), 0.0);
        assert_eq!(n.normalize(30.0), 1.0);
        assert!((n.normalize(20.0) - 0.5).abs() < 1e-12);
        assert_eq!(n.normalize(50.0), 1.0, "clamped above");
        assert_eq!(n.normalize(0.0), 0.0, "clamped below");
    }

    #[test]
    fn minmax_degenerate_range() {
        let mut n = MinMaxNormalizer::new();
        n.observe(3.0);
        assert_eq!(n.normalize(3.0), 0.5);
    }

    #[test]
    fn kind_builds_expected_variants() {
        let mut z = NormalizerKind::ZLogistic.build();
        let mut m = NormalizerKind::MinMax.build();
        for x in [0.0, 10.0] {
            z.observe(x);
            m.observe(x);
        }
        assert_eq!(m.normalize(0.0), 0.0);
        assert!(z.normalize(0.0) > 0.0);
    }
}
