//! One-way analysis of variance (ANOVA).
//!
//! The paper's user study verifies, with ANOVA tests at p < .05, that (a)
//! mode order within a treatment group, (b) the same treatment group across
//! datasets, and (c) domain knowledge within a CS-expertise level, make no
//! significant difference (footnotes 4–6). The study harness reproduces
//! those checks with this module.

use crate::special::f_sf;

/// Result of a one-way ANOVA across `k` groups with `n` total observations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnovaResult {
    /// F statistic (between-group MS / within-group MS).
    pub f: f64,
    /// Numerator degrees of freedom (`k − 1`).
    pub df_between: f64,
    /// Denominator degrees of freedom (`n − k`).
    pub df_within: f64,
    /// Upper-tail p-value `P(F > f)`.
    pub p_value: f64,
}

impl AnovaResult {
    /// Whether the group means differ significantly at level `alpha`.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Runs a one-way ANOVA over the given groups of observations.
///
/// Returns `None` when the test is undefined: fewer than two groups, any
/// empty group, or fewer observations than groups + 1. When all variance is
/// between groups (zero within-group variance) the F statistic is reported
/// as infinite with p-value 0, unless the group means are also all equal,
/// in which case F = 0 and p = 1.
pub fn one_way_anova(groups: &[&[f64]]) -> Option<AnovaResult> {
    let k = groups.len();
    if k < 2 || groups.iter().any(|g| g.is_empty()) {
        return None;
    }
    let n: usize = groups.iter().map(|g| g.len()).sum();
    if n <= k {
        return None;
    }

    let grand_mean: f64 = groups.iter().flat_map(|g| g.iter()).sum::<f64>() / n as f64;
    let mut ss_between = 0.0;
    let mut ss_within = 0.0;
    for g in groups {
        let m = g.iter().sum::<f64>() / g.len() as f64;
        ss_between += g.len() as f64 * (m - grand_mean).powi(2);
        ss_within += g.iter().map(|&x| (x - m).powi(2)).sum::<f64>();
    }

    let df_between = (k - 1) as f64;
    let df_within = (n - k) as f64;
    let ms_between = ss_between / df_between;
    let ms_within = ss_within / df_within;

    let (f, p_value) = if ms_within == 0.0 {
        if ms_between == 0.0 {
            (0.0, 1.0)
        } else {
            (f64::INFINITY, 0.0)
        }
    } else {
        let f = ms_between / ms_within;
        (f, f_sf(f, df_between, df_within))
    };

    Some(AnovaResult {
        f,
        df_between,
        df_within,
        p_value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_groups_not_significant() {
        let g = [1.0, 2.0, 3.0, 4.0];
        let r = one_way_anova(&[&g, &g, &g]).unwrap();
        assert!(r.f.abs() < 1e-12);
        assert!((r.p_value - 1.0).abs() < 1e-9);
        assert!(!r.significant_at(0.05));
    }

    #[test]
    fn clearly_different_groups_significant() {
        let a = [1.0, 1.1, 0.9, 1.05, 0.95];
        let b = [5.0, 5.2, 4.8, 5.1, 4.9];
        let r = one_way_anova(&[&a, &b]).unwrap();
        assert!(r.f > 100.0);
        assert!(r.significant_at(0.001));
    }

    #[test]
    fn matches_textbook_example() {
        // Classic example: three groups, known F.
        let a = [6.0, 8.0, 4.0, 5.0, 3.0, 4.0];
        let b = [8.0, 12.0, 9.0, 11.0, 6.0, 8.0];
        let c = [13.0, 9.0, 11.0, 8.0, 7.0, 12.0];
        let r = one_way_anova(&[&a, &b, &c]).unwrap();
        // Hand computation: grand mean 8.0; SSB = 84, SSW = 68,
        // F = (84/2)/(68/15) = 9.264…
        assert!((r.f - 9.264_705_882).abs() < 1e-6, "F = {}", r.f);
        assert_eq!(r.df_between, 2.0);
        assert_eq!(r.df_within, 15.0);
        assert!(r.p_value < 0.01 && r.p_value > 0.0001);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(one_way_anova(&[]).is_none());
        let g = [1.0, 2.0];
        assert!(one_way_anova(&[&g]).is_none());
        let empty: [f64; 0] = [];
        assert!(one_way_anova(&[&g, &empty]).is_none());
        let s1 = [1.0];
        let s2 = [2.0];
        assert!(one_way_anova(&[&s1, &s2]).is_none(), "n <= k rejected");
    }

    #[test]
    fn zero_within_variance_infinite_f() {
        let a = [2.0, 2.0, 2.0];
        let b = [5.0, 5.0, 5.0];
        let r = one_way_anova(&[&a, &b]).unwrap();
        assert!(r.f.is_infinite());
        assert_eq!(r.p_value, 0.0);
    }
}
