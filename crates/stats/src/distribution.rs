//! Rating distributions (Definition 1 of the paper).
//!
//! A rating distribution records, for one rating dimension of one rating
//! group, how many rating records were assigned each score of the discrete
//! scale `1..=m`. It is the atom from which rating maps, interestingness
//! scores, and all distribution distances are computed.

use serde::{Deserialize, Serialize};

/// A histogram of rating scores over the ordinal scale `1..=m`.
///
/// Index `j` of [`counts`](Self::counts) holds the number of records whose
/// score is `j + 1`. The distribution is a plain count vector rather than a
/// normalized probability vector so that it can be updated incrementally as
/// the phase-based execution framework streams fractions of a rating group;
/// probability views are derived on demand.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RatingDistribution {
    counts: Vec<u64>,
}

impl RatingDistribution {
    /// Creates an empty distribution over the scale `1..=scale`.
    ///
    /// # Panics
    /// Panics if `scale == 0`.
    pub fn new(scale: usize) -> Self {
        assert!(scale > 0, "rating scale must be at least 1");
        Self {
            counts: vec![0; scale],
        }
    }

    /// Builds a distribution directly from per-score counts
    /// (`counts[0]` = number of 1-ratings, and so on).
    pub fn from_counts(counts: Vec<u64>) -> Self {
        assert!(!counts.is_empty(), "rating scale must be at least 1");
        Self { counts }
    }

    /// Overwrites this distribution in place from per-score counts — the
    /// buffer-reusing twin of [`Self::from_counts`], for callers that hold
    /// a pool of distributions across estimations.
    ///
    /// # Panics
    /// Panics if `counts` is empty.
    pub fn copy_from_counts(&mut self, counts: &[u64]) {
        assert!(!counts.is_empty(), "rating scale must be at least 1");
        self.counts.clear();
        self.counts.extend_from_slice(counts);
    }

    /// Resets to the empty distribution over `1..=scale`, reusing the
    /// existing buffer.
    ///
    /// # Panics
    /// Panics if `scale == 0`.
    pub fn reset(&mut self, scale: usize) {
        assert!(scale > 0, "rating scale must be at least 1");
        self.counts.clear();
        self.counts.resize(scale, 0);
    }

    /// The size `m` of the rating scale.
    #[inline]
    pub fn scale(&self) -> usize {
        self.counts.len()
    }

    /// The raw per-score counts.
    #[inline]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of records with the given score (1-based).
    ///
    /// # Panics
    /// Panics if `score` is 0 or exceeds the scale.
    #[inline]
    pub fn count(&self, score: u8) -> u64 {
        self.counts[usize::from(score) - 1]
    }

    /// Records one rating with the given 1-based score.
    ///
    /// # Panics
    /// Panics if `score` is 0 or exceeds the scale.
    #[inline]
    pub fn add(&mut self, score: u8) {
        self.counts[usize::from(score) - 1] += 1;
    }

    /// Records `n` ratings with the given 1-based score.
    #[inline]
    pub fn add_n(&mut self, score: u8, n: u64) {
        self.counts[usize::from(score) - 1] += n;
    }

    /// Total number of records.
    #[inline]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Whether the distribution holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Merges another distribution (same scale) into this one.
    ///
    /// # Panics
    /// Panics if the scales differ.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.scale(), other.scale(), "cannot merge differing scales");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// [`Self::merge`] from a raw count slice, so batch-staging callers can
    /// fold a flat count matrix into an overall distribution without
    /// materializing intermediate distributions. `u64` addition is exact,
    /// so the result equals merging the equivalent [`RatingDistribution`].
    ///
    /// # Panics
    /// Panics if `counts.len()` differs from the scale.
    pub fn merge_counts(&mut self, counts: &[u64]) {
        assert_eq!(self.scale(), counts.len(), "cannot merge differing scales");
        for (a, &b) in self.counts.iter_mut().zip(counts) {
            *a += b;
        }
    }

    /// The probability view `[w_1, …, w_m]` of the distribution.
    ///
    /// Returns a uniform distribution when empty, so that distances against
    /// empty subgroups are well-defined.
    pub fn probabilities(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            let u = 1.0 / self.scale() as f64;
            return vec![u; self.scale()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }

    /// Mean score (on the `1..=m` scale). Returns `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let sum: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(j, &c)| (j as f64 + 1.0) * c as f64)
            .sum();
        Some(sum / total as f64)
    }

    /// Population standard deviation of the scores. Returns `None` when empty.
    ///
    /// This is the dispersion measure behind the paper's *agreement*
    /// criterion: a subgroup whose reviewers agree has a small SD.
    pub fn std_dev(&self) -> Option<f64> {
        let mean = self.mean()?;
        let total = self.total() as f64;
        let ss: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(j, &c)| {
                let d = (j as f64 + 1.0) - mean;
                d * d * c as f64
            })
            .sum();
        Some((ss / total).sqrt())
    }

    /// The score (1-based) with the highest count; ties resolve to the
    /// lowest score. Returns `None` when empty.
    pub fn mode(&self) -> Option<u8> {
        if self.is_empty() {
            return None;
        }
        let (idx, _) = self
            .counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))?;
        Some(idx as u8 + 1)
    }

    /// Cumulative distribution function evaluated at every score:
    /// `cdf[j] = P(score <= j + 1)`. Uniform if empty (consistent with
    /// [`Self::probabilities`]).
    pub fn cdf(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.cdf_into(&mut out);
        out
    }

    /// [`Self::cdf`] into a caller-provided buffer, so hot paths (distance
    /// signatures, cost-matrix builds) reuse one allocation across calls.
    /// The buffer is cleared first; values are bit-identical to
    /// [`Self::cdf`].
    pub fn cdf_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.scale());
        let total = self.total();
        let mut acc = 0.0;
        if total == 0 {
            let u = 1.0 / self.scale() as f64;
            for _ in 0..self.scale() {
                acc += u;
                out.push(acc);
            }
        } else {
            let inv = total as f64;
            for &c in &self.counts {
                acc += c as f64 / inv;
                out.push(acc);
            }
        }
    }
}

/// Batched [`RatingDistribution::cdf_into`] over a staged score-major
/// batch, dispatched through the process-wide
/// [`kernels::active`](crate::kernels::active) SIMD path: on return,
/// `out[j * lanes + i]` is bit-identical to `cdf_into` element `j` of lane
/// `i` (uniform steps for empty lanes).
pub fn cdf_rows(batch: &crate::kernels::BatchScratch, out: &mut Vec<f64>) {
    crate::kernels::cdf_rows(crate::kernels::active(), batch, out);
}

/// Batched [`RatingDistribution::mean`] / [`RatingDistribution::std_dev`]
/// over a staged batch, dispatched through the process-wide
/// [`kernels::active`](crate::kernels::active) SIMD path. Empty lanes
/// yield NaN (the scalar API's `None`); callers filter on
/// `batch.totals()`.
pub fn mean_sd_rows(
    batch: &crate::kernels::BatchScratch,
    out_mean: &mut Vec<f64>,
    out_sd: &mut Vec<f64>,
) {
    crate::kernels::mean_sd_rows(crate::kernels::active(), batch, out_mean, out_sd);
}

impl std::fmt::Display for RatingDistribution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (j, c) in self.counts.iter().enumerate() {
            if j > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}:{}", j + 1, c)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> RatingDistribution {
        // {1:1, 2:2, 3:1, 4:5, 5:7} — the Williamsburg row from Figure 3.
        RatingDistribution::from_counts(vec![1, 2, 1, 5, 7])
    }

    #[test]
    fn new_is_empty() {
        let d = RatingDistribution::new(5);
        assert!(d.is_empty());
        assert_eq!(d.total(), 0);
        assert_eq!(d.scale(), 5);
        assert_eq!(d.mean(), None);
        assert_eq!(d.std_dev(), None);
        assert_eq!(d.mode(), None);
    }

    #[test]
    #[should_panic(expected = "rating scale")]
    fn zero_scale_panics() {
        let _ = RatingDistribution::new(0);
    }

    #[test]
    fn add_and_count() {
        let mut d = RatingDistribution::new(5);
        d.add(1);
        d.add(5);
        d.add(5);
        d.add_n(3, 4);
        assert_eq!(d.count(1), 1);
        assert_eq!(d.count(3), 4);
        assert_eq!(d.count(5), 2);
        assert_eq!(d.total(), 7);
    }

    #[test]
    fn mean_matches_figure3() {
        // Paper's Figure 3 reports 3.9 for the Williamsburg distribution.
        let d = example();
        let mean = d.mean().unwrap();
        assert!((mean - 3.9375).abs() < 1e-12);
        assert_eq!(format!("{:.1}", mean), "3.9");
    }

    #[test]
    fn probabilities_sum_to_one() {
        let d = example();
        let sum: f64 = d.probabilities().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_probabilities_are_uniform() {
        let d = RatingDistribution::new(4);
        assert_eq!(d.probabilities(), vec![0.25; 4]);
        let cdf = d.cdf();
        assert!((cdf[3] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = example();
        let b = example();
        a.merge(&b);
        assert_eq!(a.counts(), &[2, 4, 2, 10, 14]);
    }

    #[test]
    #[should_panic(expected = "differing scales")]
    fn merge_scale_mismatch_panics() {
        let mut a = RatingDistribution::new(5);
        let b = RatingDistribution::new(4);
        a.merge(&b);
    }

    #[test]
    fn std_dev_zero_when_unanimous() {
        let mut d = RatingDistribution::new(5);
        d.add_n(4, 10);
        assert_eq!(d.std_dev().unwrap(), 0.0);
    }

    #[test]
    fn std_dev_positive_when_spread() {
        let d = example();
        assert!(d.std_dev().unwrap() > 1.0);
    }

    #[test]
    fn mode_picks_highest_count() {
        let d = example();
        assert_eq!(d.mode(), Some(5));
        let tie = RatingDistribution::from_counts(vec![3, 0, 3]);
        assert_eq!(tie.mode(), Some(1), "ties resolve to the lowest score");
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let d = example();
        let cdf = d.cdf();
        for w in cdf.windows(2) {
            assert!(w[0] <= w[1] + 1e-15);
        }
        assert!((cdf.last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(example().to_string(), "{1:1,2:2,3:1,4:5,5:7}");
    }
}
