//! Exact Earth Mover's Distance between weighted point sets.
//!
//! The paper measures the diversity of a set of rating maps with the EMD
//! (Section 3.2.4). A rating map is a *set* of weighted subgroup
//! distributions, so comparing two maps requires the general EMD — an
//! optimal-transport problem — rather than the closed-form 1-D version.
//! This module implements an exact transportation solver using successive
//! shortest augmenting paths with node potentials (a standard min-cost-flow
//! formulation). Instances are small (tens of subgroups per map), so the
//! solver favors clarity and exactness over asymptotic sophistication.

/// Numerical tolerance under which supplies/demands are considered consumed.
const EPS: f64 = 1e-12;

/// Batched normalized 1-D EMD of many score-major CDF columns against one
/// reference CDF — the vectorized
/// [`emd_1d_normalized_from_cdfs`](crate::distance::emd_1d_normalized_from_cdfs):
/// `out[i] = Σ_j |cdfs_ij − ref_j| / (m − 1)` (0 when `m <= 1`), dispatched
/// through the process-wide [`kernels::active`](crate::kernels::active)
/// SIMD path. This is the mixture-CDF lower-bound primitive of GMM
/// selection.
pub fn emd_1d_normalized_rows(cdfs: &[f64], lanes: usize, reference: &[f64], out: &mut Vec<f64>) {
    crate::kernels::l1_norm_rows(
        crate::kernels::active(),
        cdfs,
        lanes,
        reference.len(),
        reference,
        out,
    );
}

/// Ground-cost matrix between two score-major CDF batches: each cell is the
/// normalized 1-D EMD between one left column and one right column,
/// bit-identical to
/// [`emd_1d_normalized_from_cdfs`](crate::distance::emd_1d_normalized_from_cdfs)
/// per pair, dispatched through the process-wide
/// [`kernels::active`](crate::kernels::active) SIMD path.
pub fn emd_cost_matrix(
    a: &[f64],
    a_lanes: usize,
    b: &[f64],
    b_lanes: usize,
    scale: usize,
    out: &mut Vec<f64>,
) {
    crate::kernels::cost_matrix(crate::kernels::active(), a, a_lanes, b, b_lanes, scale, out);
}

/// Solves the balanced transportation problem exactly.
///
/// `supplies[i]` units must be shipped from source `i`, `demands[j]` units
/// received by sink `j`, with `cost(i, j)` the per-unit shipping cost.
/// Returns the minimum total cost.
///
/// Supplies and demands must be non-negative; the totals are normalized to
/// match (the EMD convention: both sides are treated as probability masses),
/// so callers may pass unnormalized weights.
///
/// # Panics
/// Panics if either side is empty, if any weight is negative or non-finite,
/// or if either side has zero total mass.
pub fn emd_transport<F>(supplies: &[f64], demands: &[f64], cost: F) -> f64
where
    F: Fn(usize, usize) -> f64,
{
    validate_sides(supplies, demands);
    let n = supplies.len();
    let m = demands.len();
    // Cost matrix, cached once.
    let mut c = vec![0.0f64; n * m];
    for i in 0..n {
        for j in 0..m {
            let v = cost(i, j);
            assert!(
                v.is_finite() && v >= -EPS,
                "ground distances must be non-negative"
            );
            c[i * m + j] = v.max(0.0);
        }
    }
    transport_on_matrix(supplies, demands, &c, true)
}

/// [`emd_transport`] over a pre-built row-major cost matrix
/// (`costs[i * demands.len() + j]` is the unit cost from source `i` to sink
/// `j`), so batched callers — the map-distance engine — can assemble the
/// ground costs once in a reusable scratch buffer and hand a slice in,
/// instead of paying a closure call per cell.
///
/// # Panics
/// Panics on the same side conditions as [`emd_transport`], if
/// `costs.len() != supplies.len() * demands.len()`, or if any cost is
/// negative or non-finite.
pub fn emd_transport_matrix(supplies: &[f64], demands: &[f64], costs: &[f64]) -> f64 {
    validate_sides(supplies, demands);
    validate_costs(supplies.len(), demands.len(), costs);
    transport_on_matrix(supplies, demands, costs, true)
}

/// [`emd_transport_matrix`] with the single-subgroup closed-form fast path
/// disabled, forcing the augmenting-path solver even on `1 × m` / `n × 1`
/// instances. Exists so property tests can pin the fast path against the
/// general solver; not part of the supported API.
#[doc(hidden)]
pub fn emd_transport_general(supplies: &[f64], demands: &[f64], costs: &[f64]) -> f64 {
    validate_sides(supplies, demands);
    validate_costs(supplies.len(), demands.len(), costs);
    transport_on_matrix(supplies, demands, costs, false)
}

fn validate_sides(supplies: &[f64], demands: &[f64]) {
    assert!(
        !supplies.is_empty() && !demands.is_empty(),
        "EMD requires non-empty point sets"
    );
    for &w in supplies.iter().chain(demands) {
        assert!(
            w.is_finite() && w >= 0.0,
            "weights must be finite and non-negative"
        );
    }
    let total_s: f64 = supplies.iter().sum();
    let total_d: f64 = demands.iter().sum();
    assert!(
        total_s > 0.0 && total_d > 0.0,
        "total mass must be positive"
    );
}

fn validate_costs(n: usize, m: usize, costs: &[f64]) {
    assert_eq!(costs.len(), n * m, "cost matrix must be row-major n × m");
    for &v in costs {
        assert!(
            v.is_finite() && v >= 0.0,
            "ground distances must be non-negative"
        );
    }
}

/// Core dispatch over a validated instance: closed-form when one side is a
/// single point (every unit of mass must ship to/from it, so the optimum is
/// the demand- or supply-weighted average of that row/column of ground
/// costs — no flow search needed), the augmenting-path solver otherwise.
fn transport_on_matrix(supplies: &[f64], demands: &[f64], c: &[f64], fast_path: bool) -> f64 {
    let n = supplies.len();
    let m = demands.len();
    let total_s: f64 = supplies.iter().sum();
    let total_d: f64 = demands.iter().sum();

    if fast_path && n == 1 {
        let d: f64 = demands
            .iter()
            .zip(c)
            .map(|(&w, &cost)| (w / total_d) * cost)
            .sum();
        return d.max(0.0);
    }
    if fast_path && m == 1 {
        let d: f64 = supplies
            .iter()
            .zip(c)
            .map(|(&w, &cost)| (w / total_s) * cost)
            .sum();
        return d.max(0.0);
    }

    let mut supply: Vec<f64> = supplies.iter().map(|&s| s / total_s).collect();
    let mut demand: Vec<f64> = demands.iter().map(|&d| d / total_d).collect();

    // flow[i*m + j] — current shipment from source i to sink j.
    let mut flow = vec![0.0f64; n * m];
    let mut total_cost = 0.0f64;

    // Successive shortest paths on the residual network. Nodes:
    // 0..n sources, n..n+m sinks. Forward arcs i→j (cost c[i][j],
    // unlimited capacity), backward arcs j→i (cost −c[i][j], capacity
    // flow[i][j]). Each augmentation ships along a min-cost path from some
    // source with remaining supply to some sink with remaining demand.
    // Bellman–Ford is used for path-finding: the graphs are tiny and
    // residual costs can be negative.
    let node_count = n + m;
    let max_iters = 4 * (n + m) * (n + m) + 16;
    let mut iter_guard = 0;
    loop {
        iter_guard += 1;
        assert!(
            iter_guard <= max_iters,
            "transportation solver failed to converge (numerical issue)"
        );

        let remaining: f64 = supply.iter().sum();
        if remaining <= EPS {
            break;
        }

        // Bellman–Ford from a virtual super-source connected (cost 0) to all
        // sources with remaining supply.
        let mut dist = vec![f64::INFINITY; node_count];
        let mut pred: Vec<Option<usize>> = vec![None; node_count];
        for (i, &s) in supply.iter().enumerate() {
            if s > EPS {
                dist[i] = 0.0;
            }
        }
        for _ in 0..node_count {
            let mut changed = false;
            for i in 0..n {
                if dist[i].is_finite() {
                    for j in 0..m {
                        let nd = dist[i] + c[i * m + j];
                        if nd + EPS < dist[n + j] {
                            dist[n + j] = nd;
                            pred[n + j] = Some(i);
                            changed = true;
                        }
                    }
                }
            }
            for j in 0..m {
                if dist[n + j].is_finite() {
                    for i in 0..n {
                        if flow[i * m + j] > EPS {
                            let nd = dist[n + j] - c[i * m + j];
                            if nd + EPS < dist[i] {
                                dist[i] = nd;
                                pred[i] = Some(n + j);
                                changed = true;
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Cheapest reachable sink with remaining demand.
        let target = (0..m)
            .filter(|&j| demand[j] > EPS && dist[n + j].is_finite())
            .min_by(|&a, &b| dist[n + a].partial_cmp(&dist[n + b]).unwrap());
        let Some(t) = target else {
            // All remaining demand unreachable: only possible when the
            // remaining mass is numerical dust.
            debug_assert!(
                remaining <= 1e-6,
                "unreachable demand with mass {remaining}"
            );
            break;
        };

        // Trace the augmenting path back to a source, recording arcs.
        let mut path: Vec<(usize, usize, bool)> = Vec::new(); // (i, j, forward)
        let mut node = n + t;
        loop {
            match pred[node] {
                Some(p) if node >= n => {
                    // forward arc p(source) → node(sink)
                    path.push((p, node - n, true));
                    node = p;
                }
                Some(p) => {
                    // backward arc p(sink) → node(source)
                    path.push((node, p - n, false));
                    node = p;
                }
                None => break,
            }
        }
        let src = node;
        debug_assert!(src < n && supply[src] > EPS);

        // Bottleneck: remaining supply, remaining demand, and backward flows.
        let mut push = supply[src].min(demand[t]);
        for &(i, j, forward) in &path {
            if !forward {
                push = push.min(flow[i * m + j]);
            }
        }
        debug_assert!(push > 0.0);

        for &(i, j, forward) in &path {
            if forward {
                flow[i * m + j] += push;
                total_cost += push * c[i * m + j];
            } else {
                flow[i * m + j] -= push;
                total_cost -= push * c[i * m + j];
            }
        }
        supply[src] -= push;
        demand[t] -= push;
    }

    total_cost.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::emd_1d;
    use crate::distribution::RatingDistribution;

    #[test]
    fn identity_costs_zero() {
        let w = [0.25, 0.75];
        let d = emd_transport(&w, &w, |i, j| if i == j { 0.0 } else { 1.0 });
        assert!(d.abs() < 1e-9);
    }

    #[test]
    fn single_source_single_sink() {
        let d = emd_transport(&[1.0], &[1.0], |_, _| 3.5);
        assert!((d - 3.5).abs() < 1e-9);
    }

    #[test]
    fn two_by_two_crossing() {
        // Staying in place is free, crossing costs 1. Masses 0.7/0.3 vs
        // 0.3/0.7: the 0.4 surplus at source 0 must cross, everything else
        // stays. Optimal cost 0.4.
        let s = [0.7, 0.3];
        let t = [0.3, 0.7];
        let d = emd_transport(&s, &t, |i, j| if i == j { 0.0 } else { 1.0 });
        assert!((d - 0.4).abs() < 1e-9, "got {d}");
    }

    #[test]
    fn matches_closed_form_1d() {
        let cases: Vec<(Vec<u64>, Vec<u64>)> = vec![
            (vec![10, 0, 0, 0, 0], vec![0, 0, 0, 0, 10]),
            (vec![1, 2, 3, 4, 5], vec![5, 4, 3, 2, 1]),
            (vec![1, 1, 1, 1, 1], vec![0, 0, 5, 0, 0]),
            (vec![7, 0, 2, 0, 1], vec![1, 0, 2, 0, 7]),
        ];
        for (a, b) in cases {
            let da = RatingDistribution::from_counts(a);
            let db = RatingDistribution::from_counts(b);
            let closed = emd_1d(&da, &db);
            let general = emd_transport(&da.probabilities(), &db.probabilities(), |i, j| {
                (i as f64 - j as f64).abs()
            });
            assert!(
                (closed - general).abs() < 1e-8,
                "closed {closed} vs transport {general}"
            );
        }
    }

    #[test]
    fn unnormalized_weights_are_normalized() {
        let a = emd_transport(&[2.0, 2.0], &[1.0, 1.0], |i, j| (i as f64 - j as f64).abs());
        assert!(a.abs() < 1e-9);
    }

    #[test]
    fn symmetric_for_metric_ground_distance() {
        let s = [0.2, 0.5, 0.3];
        let t = [0.6, 0.1, 0.3];
        let d1 = emd_transport(&s, &t, |i, j| (i as f64 - j as f64).abs());
        let d2 = emd_transport(&t, &s, |i, j| (i as f64 - j as f64).abs());
        assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn requires_rerouting_through_residual_arcs() {
        // A case where greedy nearest-neighbor matching is suboptimal:
        // sources at 0 and 2; sinks at 1.1 and 2 on a line.
        // Greedy from source 2 would take sink 2, forcing source 0 → 1.1,
        // total 0 + 1.1 = 1.1; that is also optimal here. Flip weights so
        // splitting is needed.
        let pos_s = [0.0f64, 2.0];
        let pos_t = [1.1f64, 2.0];
        let s = [0.5, 0.5];
        let t = [0.9, 0.1];
        let d = emd_transport(&s, &t, |i, j| (pos_s[i] - pos_t[j]).abs());
        // Optimal: s0(0.5)→t0 cost .55; s1: 0.4→t0 cost 0.9*0.4=.36,
        // 0.1→t1 cost 0. Total 0.91.
        assert!((d - 0.91).abs() < 1e-9, "got {d}");
    }

    #[test]
    fn matrix_api_matches_closure_api() {
        let s = [0.2, 0.5, 0.3];
        let t = [0.6, 0.1, 0.3];
        let costs: Vec<f64> = (0..3)
            .flat_map(|i| (0..3).map(move |j| (i as f64 - j as f64).abs()))
            .collect();
        let via_closure = emd_transport(&s, &t, |i, j| (i as f64 - j as f64).abs());
        let via_matrix = emd_transport_matrix(&s, &t, &costs);
        assert!((via_closure - via_matrix).abs() < 1e-12);
    }

    #[test]
    fn single_source_fast_path_matches_general() {
        let s = [2.5];
        let t = [0.1, 0.4, 0.2, 0.3];
        let costs = [1.0, 0.25, 0.0, 2.0];
        let fast = emd_transport_matrix(&s, &t, &costs);
        let general = emd_transport_general(&s, &t, &costs);
        // Closed form: demand-weighted average of ground costs.
        let expect = 0.1 * 1.0 + 0.4 * 0.25 + 0.2 * 0.0 + 0.3 * 2.0;
        assert!((fast - expect).abs() < 1e-12, "got {fast}");
        assert!((fast - general).abs() < 1e-9);
    }

    #[test]
    fn single_sink_fast_path_matches_general() {
        let s = [3.0, 1.0];
        let t = [5.0];
        let costs = [0.5, 1.5];
        let fast = emd_transport_matrix(&s, &t, &costs);
        let general = emd_transport_general(&s, &t, &costs);
        let expect = 0.75 * 0.5 + 0.25 * 1.5;
        assert!((fast - expect).abs() < 1e-12, "got {fast}");
        assert!((fast - general).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "row-major")]
    fn matrix_wrong_shape_panics() {
        let _ = emd_transport_matrix(&[1.0, 1.0], &[1.0], &[0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_side_panics() {
        let _ = emd_transport(&[], &[1.0], |_, _| 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_mass_panics() {
        let _ = emd_transport(&[0.0], &[1.0], |_, _| 0.0);
    }
}
