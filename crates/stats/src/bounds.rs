//! Worst-case confidence intervals for sampling without replacement.
//!
//! The paper's confidence-interval pruning (Algorithm 3) bounds the utility
//! of partially evaluated rating maps using intervals "derived from the
//! Hoeffding–Serfling inequality" \[48\], exactly as SeeDB \[54\] does. The
//! phase-based execution framework consumes a rating group in `n` equal
//! fractions of a fixed random permutation — i.e. it *samples without
//! replacement* from a finite population — which is the regime the
//! Hoeffding–Serfling bound covers.

use serde::{Deserialize, Serialize};

/// A closed interval `[lo, hi]` bounding an unknown quantity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl ConfidenceInterval {
    /// Creates an interval, clamping so that `lo <= hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        if lo <= hi {
            Self { lo, hi }
        } else {
            Self { lo: hi, hi: lo }
        }
    }

    /// An exact (zero-width) interval.
    pub fn point(v: f64) -> Self {
        Self { lo: v, hi: v }
    }

    /// Interval width.
    #[inline]
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint of the interval.
    #[inline]
    pub fn mid(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Whether this interval lies entirely below `other` (no overlap).
    ///
    /// This is the dominance test of Algorithm 3: a criterion whose interval
    /// is entirely below another criterion's interval can never define the
    /// max-combined utility and is discarded.
    #[inline]
    pub fn entirely_below(&self, other: &Self) -> bool {
        self.hi < other.lo
    }

    /// Whether `v` lies within the interval (inclusive).
    #[inline]
    pub fn contains(&self, v: f64) -> bool {
        v >= self.lo && v <= self.hi
    }

    /// Scales both endpoints by a non-negative factor (used to apply the
    /// dimension weight of Equation 1 to a utility interval).
    pub fn scale(&self, w: f64) -> Self {
        debug_assert!(w >= 0.0);
        Self::new(self.lo * w, self.hi * w)
    }

    /// Intersects with `[0, 1]` — criteria scores are normalized, so their
    /// true values always lie in the unit interval.
    pub fn clamp_unit(&self) -> Self {
        Self {
            lo: self.lo.clamp(0.0, 1.0),
            hi: self.hi.clamp(0.0, 1.0),
        }
    }
}

/// Hoeffding–Serfling confidence bound for the mean of a bounded population
/// sampled without replacement.
///
/// For a population of `N` values in `[0, 1]`, after observing `s` of them
/// (in uniformly random order), the running mean deviates from the true mean
/// by more than `epsilon(s)` with probability at most `delta`, where
///
/// ```text
/// epsilon(s) = sqrt( (1 − f_s) · (2·ln ln s + ln(π²/(3δ))) / (2 s) ),
/// f_s = (s − 1) / N
/// ```
///
/// This is the exact form used by SeeDB \[54\]; the `(1 − f_s)` factor makes
/// the interval collapse to a point as the sample approaches the full
/// population, which is what lets late phases prune aggressively.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HoeffdingSerfling {
    population: u64,
    delta: f64,
}

impl HoeffdingSerfling {
    /// Creates a bound for a population of `population` items with error
    /// probability `delta`.
    ///
    /// # Panics
    /// Panics if `population == 0` or `delta` is not in `(0, 1)`.
    pub fn new(population: u64, delta: f64) -> Self {
        assert!(population > 0, "population must be positive");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        Self { population, delta }
    }

    /// The population size `N`.
    pub fn population(&self) -> u64 {
        self.population
    }

    /// Half-width `epsilon(s)` of the confidence interval after `s` samples.
    ///
    /// Returns `+inf` for `s == 0` (nothing observed) and `0` for
    /// `s >= N` (the whole population has been seen). For `s ∈ {1, 2}` the
    /// `ln ln s` term is clamped at 0, matching common practice.
    pub fn half_width(&self, samples: u64) -> f64 {
        if samples == 0 {
            return f64::INFINITY;
        }
        if samples >= self.population {
            return 0.0;
        }
        let s = samples as f64;
        let n = self.population as f64;
        let f_s = (s - 1.0) / n;
        let lnln = if samples >= 3 {
            s.ln().ln().max(0.0)
        } else {
            0.0
        };
        let tail = (std::f64::consts::PI.powi(2) / (3.0 * self.delta)).ln();
        (((1.0 - f_s) * (2.0 * lnln + tail)) / (2.0 * s)).sqrt()
    }

    /// Confidence interval around a running mean for a statistic known to
    /// lie in `[0, 1]`, after `samples` observations.
    pub fn interval(&self, mean: f64, samples: u64) -> ConfidenceInterval {
        let eps = self.half_width(samples);
        if eps.is_infinite() {
            return ConfidenceInterval::new(0.0, 1.0);
        }
        ConfidenceInterval::new(mean - eps, mean + eps).clamp_unit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_basics() {
        let i = ConfidenceInterval::new(0.2, 0.6);
        assert!((i.width() - 0.4).abs() < 1e-15);
        assert!((i.mid() - 0.4).abs() < 1e-15);
        assert!(i.contains(0.2) && i.contains(0.6) && !i.contains(0.61));
    }

    #[test]
    fn new_swaps_inverted_bounds() {
        let i = ConfidenceInterval::new(0.9, 0.1);
        assert_eq!((i.lo, i.hi), (0.1, 0.9));
    }

    #[test]
    fn entirely_below_requires_no_overlap() {
        let a = ConfidenceInterval::new(0.1, 0.3);
        let b = ConfidenceInterval::new(0.4, 0.6);
        let c = ConfidenceInterval::new(0.25, 0.5);
        assert!(a.entirely_below(&b));
        assert!(!b.entirely_below(&a));
        assert!(!a.entirely_below(&c));
    }

    #[test]
    fn scale_applies_weight() {
        let i = ConfidenceInterval::new(0.2, 0.8).scale(0.5);
        assert!((i.lo - 0.1).abs() < 1e-15 && (i.hi - 0.4).abs() < 1e-15);
    }

    #[test]
    fn zero_samples_is_vacuous() {
        let hs = HoeffdingSerfling::new(1000, 0.05);
        assert!(hs.half_width(0).is_infinite());
        let i = hs.interval(0.5, 0);
        assert_eq!((i.lo, i.hi), (0.0, 1.0));
    }

    #[test]
    fn full_population_is_exact() {
        let hs = HoeffdingSerfling::new(100, 0.05);
        assert_eq!(hs.half_width(100), 0.0);
        assert_eq!(hs.half_width(150), 0.0);
        let i = hs.interval(0.37, 100);
        assert_eq!((i.lo, i.hi), (0.37, 0.37));
    }

    #[test]
    fn width_shrinks_with_more_samples() {
        let hs = HoeffdingSerfling::new(10_000, 0.05);
        let mut prev = f64::INFINITY;
        for s in [10u64, 100, 1000, 5000, 9000, 9999] {
            let w = hs.half_width(s);
            assert!(w < prev, "width should shrink: s={s} w={w} prev={prev}");
            assert!(w.is_finite() && w > 0.0);
            prev = w;
        }
    }

    #[test]
    fn tighter_delta_widens_interval() {
        let loose = HoeffdingSerfling::new(1000, 0.2);
        let tight = HoeffdingSerfling::new(1000, 0.001);
        assert!(tight.half_width(100) > loose.half_width(100));
    }

    #[test]
    fn interval_clamped_to_unit() {
        let hs = HoeffdingSerfling::new(1000, 0.05);
        let i = hs.interval(0.02, 5);
        assert!(i.lo >= 0.0 && i.hi <= 1.0);
    }

    #[test]
    fn empirical_coverage_on_random_population() {
        // Draw a random 0/1 population, walk a random permutation, and check
        // the running mean stays inside the bound (it is a worst-case bound,
        // so violations should be essentially absent at delta = 0.05).
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(42);
        let n = 2000usize;
        let pop: Vec<f64> = (0..n)
            .map(|_| if rng.random_bool(0.3) { 1.0 } else { 0.0 })
            .collect();
        let true_mean = pop.iter().sum::<f64>() / n as f64;
        let hs = HoeffdingSerfling::new(n as u64, 0.05);
        let mut violations = 0usize;
        let mut checks = 0usize;
        for _ in 0..20 {
            let mut perm = pop.clone();
            perm.shuffle(&mut rng);
            let mut sum = 0.0;
            for (s, v) in perm.iter().enumerate() {
                sum += v;
                let seen = (s + 1) as u64;
                if seen.is_multiple_of(100) {
                    let mean = sum / seen as f64;
                    let eps = hs.half_width(seen);
                    checks += 1;
                    if (mean - true_mean).abs() > eps {
                        violations += 1;
                    }
                }
            }
        }
        assert!(checks > 0);
        assert_eq!(violations, 0, "worst-case bound should not be violated");
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn invalid_delta_panics() {
        let _ = HoeffdingSerfling::new(10, 1.5);
    }
}
