//! Special functions: ln-gamma, the regularized incomplete beta function,
//! and the F-distribution CDF.
//!
//! The user-study analysis in the paper reports ANOVA significance tests
//! (footnotes 4–6). Reproducing those requires the CDF of the
//! F-distribution, which in turn needs the regularized incomplete beta
//! function. Implemented here from scratch (Lanczos approximation + Lentz's
//! continued fraction, following the classic Numerical Recipes derivations)
//! so no external numerics crate is needed.

/// Natural log of the gamma function, via the Lanczos approximation
/// (g = 7, n = 9 coefficients). Accurate to ~1e-13 for `x > 0`.
///
/// # Panics
/// Panics if `x <= 0` (the study code only needs positive arguments).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument");
    // Lanczos coefficients for g = 7.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy for small x.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized incomplete beta function `I_x(a, b)`, via the continued
/// fraction expansion with the symmetry transformation for fast convergence.
///
/// # Panics
/// Panics if `a <= 0`, `b <= 0`, or `x ∉ [0, 1]`.
pub fn regularized_incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "shape parameters must be positive");
    assert!((0.0..=1.0).contains(&x), "x must be in [0, 1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    // Use the continued fraction directly when x is below the mode; use the
    // symmetry I_x(a,b) = 1 − I_{1−x}(b,a) otherwise.
    if x < (a + 1.0) / (a + b + 2.0) {
        ln_front.exp() * beta_cf(a, b, x) / a
    } else {
        // Symmetry: I_x(a, b) = 1 − I_{1−x}(b, a), evaluated directly so the
        // threshold case cannot recurse back here.
        1.0 - ln_front.exp() * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta (modified Lentz's method).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITERS: usize = 300;
    const TINY: f64 = 1e-300;
    const EPS: f64 = 1e-15;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITERS {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// CDF of the F-distribution with `d1` and `d2` degrees of freedom,
/// evaluated at `f >= 0`.
///
/// `P(F <= f) = I_{d1 f / (d1 f + d2)}(d1/2, d2/2)`.
///
/// # Panics
/// Panics if either degrees-of-freedom value is non-positive.
pub fn f_cdf(f: f64, d1: f64, d2: f64) -> f64 {
    assert!(d1 > 0.0 && d2 > 0.0, "degrees of freedom must be positive");
    if f <= 0.0 {
        return 0.0;
    }
    let x = d1 * f / (d1 * f + d2);
    regularized_incomplete_beta(d1 / 2.0, d2 / 2.0, x)
}

/// Upper tail (p-value) of the F-distribution: `P(F > f)`.
pub fn f_sf(f: f64, d1: f64, d2: f64) -> f64 {
    (1.0 - f_cdf(f, d1, d2)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_integers() {
        // Γ(n) = (n−1)!
        let facts = [1.0f64, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (i, &f) in facts.iter().enumerate() {
            let x = (i + 1) as f64;
            assert!(
                (ln_gamma(x) - f.ln()).abs() < 1e-10,
                "ln_gamma({x}) vs ln({f})"
            );
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(π)
        let expect = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - expect).abs() < 1e-12);
    }

    #[test]
    fn beta_boundary_values() {
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn beta_symmetric_case() {
        // I_0.5(a, a) = 0.5 by symmetry.
        for a in [0.5, 1.0, 2.5, 10.0] {
            let v = regularized_incomplete_beta(a, a, 0.5);
            assert!((v - 0.5).abs() < 1e-10, "a={a}: {v}");
        }
    }

    #[test]
    fn beta_uniform_case() {
        // I_x(1, 1) = x.
        for x in [0.1, 0.33, 0.77, 0.99] {
            let v = regularized_incomplete_beta(1.0, 1.0, x);
            assert!((v - x).abs() < 1e-12);
        }
    }

    #[test]
    fn beta_known_value() {
        // I_x(2, 2) = x²(3 − 2x).
        for x in [0.2, 0.5, 0.8] {
            let expect = x * x * (3.0 - 2.0 * x);
            let v = regularized_incomplete_beta(2.0, 2.0, x);
            assert!((v - expect).abs() < 1e-12, "x={x}: {v} vs {expect}");
        }
    }

    #[test]
    fn beta_monotone_in_x() {
        let mut prev = 0.0;
        for i in 1..=20 {
            let x = i as f64 / 20.0;
            let v = regularized_incomplete_beta(3.0, 5.0, x);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn f_cdf_known_values() {
        // F(1, 1): CDF(1) = 0.5 (median of F(1,1) is 1).
        assert!((f_cdf(1.0, 1.0, 1.0) - 0.5).abs() < 1e-10);
        // F(2, 2): CDF(f) = f / (1 + f).
        for f in [0.5, 1.0, 3.0] {
            let expect = f / (1.0 + f);
            assert!((f_cdf(f, 2.0, 2.0) - expect).abs() < 1e-10);
        }
    }

    #[test]
    fn f_cdf_reference_point() {
        // Critical value: P(F(3, 20) <= 3.098) ≈ 0.95 (standard table).
        let p = f_cdf(3.098, 3.0, 20.0);
        assert!((p - 0.95).abs() < 2e-3, "got {p}");
    }

    #[test]
    fn f_sf_complements_cdf() {
        let f = 2.7;
        assert!((f_cdf(f, 4.0, 30.0) + f_sf(f, 4.0, 30.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn f_cdf_zero_and_negative() {
        assert_eq!(f_cdf(0.0, 3.0, 9.0), 0.0);
        assert_eq!(f_cdf(-1.0, 3.0, 9.0), 0.0);
    }
}
