//! Streaming moments and descriptive statistics.
//!
//! Used in two places: (1) the score normalizers standardize interestingness
//! criteria against running moments observed across candidate rating maps,
//! and (2) the user-study harness reports per-treatment-group means and
//! standard deviations.

use serde::{Deserialize, Serialize};

/// Numerically stable streaming mean/variance (Welford's algorithm).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RunningMoments {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for RunningMoments {
    fn default() -> Self {
        Self::new()
    }
}

impl RunningMoments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Population variance, or `None` if empty.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 0).then(|| self.m2 / self.count as f64)
    }

    /// Sample variance (Bessel-corrected), or `None` if fewer than 2 points.
    pub fn sample_variance(&self) -> Option<f64> {
        (self.count > 1).then(|| self.m2 / (self.count - 1) as f64)
    }

    /// Population standard deviation, or `None` if empty.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Sample standard deviation, or `None` if fewer than 2 points.
    pub fn sample_std_dev(&self) -> Option<f64> {
        self.sample_variance().map(f64::sqrt)
    }

    /// Smallest observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Summary statistics of a slice: convenience for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub n: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample (Bessel-corrected) standard deviation; 0 when `n < 2`.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

/// Computes a [`Summary`] of `xs`. Returns `None` for an empty slice.
pub fn summarize(xs: &[f64]) -> Option<Summary> {
    let mut m = RunningMoments::new();
    for &x in xs {
        m.push(x);
    }
    Some(Summary {
        n: m.count(),
        mean: m.mean()?,
        std_dev: m.sample_std_dev().unwrap_or(0.0),
        min: m.min()?,
        max: m.max()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_moments() {
        let m = RunningMoments::new();
        assert_eq!(m.count(), 0);
        assert_eq!(m.mean(), None);
        assert_eq!(m.variance(), None);
        assert_eq!(m.min(), None);
    }

    #[test]
    fn single_value() {
        let mut m = RunningMoments::new();
        m.push(4.2);
        assert_eq!(m.mean(), Some(4.2));
        assert_eq!(m.variance(), Some(0.0));
        assert_eq!(m.sample_variance(), None);
        assert_eq!(m.min(), Some(4.2));
        assert_eq!(m.max(), Some(4.2));
    }

    #[test]
    fn matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut m = RunningMoments::new();
        for &x in &xs {
            m.push(x);
        }
        assert!((m.mean().unwrap() - 5.0).abs() < 1e-12);
        assert!((m.std_dev().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = RunningMoments::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = RunningMoments::new();
        let mut b = RunningMoments::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean().unwrap() - all.mean().unwrap()).abs() < 1e-10);
        assert!((a.variance().unwrap() - all.variance().unwrap()).abs() < 1e-10);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningMoments::new();
        a.push(1.0);
        a.push(3.0);
        let before = a;
        a.merge(&RunningMoments::new());
        assert_eq!(a.mean(), before.mean());
        let mut e = RunningMoments::new();
        e.merge(&a);
        assert_eq!(e.mean(), a.mean());
        assert_eq!(e.count(), a.count());
    }

    #[test]
    fn summarize_basics() {
        let s = summarize(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.n, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std_dev - 1.0).abs() < 1e-12);
        assert_eq!((s.min, s.max), (1.0, 3.0));
        assert!(summarize(&[]).is_none());
    }
}
