//! Distances between rating distributions.
//!
//! The paper uses the *Total Variation Distance* for the two peculiarity
//! criteria (Section 4.1) and the *Earth Mover's Distance* for rating-map
//! diversity (Section 3.2.4). The Kullback–Leibler divergence is provided as
//! the alternative peculiarity measure the paper mentions.

use crate::distribution::RatingDistribution;
use crate::kernels::{self, BatchScratch};

/// Probability of one score bucket given the distribution's total, matching
/// [`RatingDistribution::probabilities`] bucket-for-bucket (empty ⇒ the
/// uniform `1/m`) without materializing the probability vector. Both
/// distances below stream through this so the hot re-estimation paths do
/// not allocate per call.
#[inline]
fn prob(count: u64, total: u64, m: f64) -> f64 {
    if total == 0 {
        1.0 / m
    } else {
        count as f64 / total as f64
    }
}

/// Total variation distance between two distributions over the same scale:
/// `TVD(p, q) = ½ · Σ |p_j − q_j|`, in `[0, 1]`.
///
/// # Panics
/// Panics if the scales differ.
pub fn total_variation(a: &RatingDistribution, b: &RatingDistribution) -> f64 {
    assert_eq!(a.scale(), b.scale(), "distributions must share a scale");
    let m = a.scale() as f64;
    let (ta, tb) = (a.total(), b.total());
    0.5 * a
        .counts()
        .iter()
        .zip(b.counts())
        .map(|(&x, &y)| (prob(x, ta, m) - prob(y, tb, m)).abs())
        .sum::<f64>()
}

/// Kullback–Leibler divergence `KL(p ‖ q)` in nats, with additive smoothing
/// `eps` applied to both distributions so the divergence is finite even when
/// `q` has empty buckets.
///
/// # Panics
/// Panics if the scales differ or `eps <= 0`.
pub fn kl_divergence(a: &RatingDistribution, b: &RatingDistribution, eps: f64) -> f64 {
    assert_eq!(a.scale(), b.scale(), "distributions must share a scale");
    assert!(eps > 0.0, "smoothing epsilon must be positive");
    let m = a.scale() as f64;
    let (ta, tb) = (a.total(), b.total());
    let norm = 1.0 + m * eps;
    a.counts()
        .iter()
        .zip(b.counts())
        .map(|(&x, &y)| {
            let p = (prob(x, ta, m) + eps) / norm;
            let q = (prob(y, tb, m) + eps) / norm;
            p * (p / q).ln()
        })
        .sum()
}

/// Batched [`total_variation`]: every staged lane against one reference
/// distribution, dispatched through the process-wide
/// [`kernels::active`] SIMD path. `out[i]` is bit-identical to
/// `total_variation(lane_i, reference)`.
///
/// # Panics
/// Panics if the reference scale differs from the batch scale.
pub fn total_variation_rows(
    batch: &BatchScratch,
    reference: &RatingDistribution,
    out: &mut Vec<f64>,
) {
    kernels::tvd_rows(
        kernels::active(),
        batch,
        reference.counts(),
        reference.total(),
        out,
    );
}

/// Batched symmetrized KL (Jeffreys) divergence: `out[i]` is bit-identical
/// to `kl_divergence(lane_i, reference, eps) + kl_divergence(reference,
/// lane_i, eps)` — the form behind the KL peculiarity measure — dispatched
/// through the process-wide [`kernels::active`] SIMD path.
///
/// # Panics
/// Panics if the scales differ or `eps <= 0`.
pub fn jeffreys_rows(
    batch: &BatchScratch,
    reference: &RatingDistribution,
    eps: f64,
    out: &mut Vec<f64>,
) {
    kernels::jeffreys_rows(
        kernels::active(),
        batch,
        reference.counts(),
        reference.total(),
        eps,
        out,
    );
}

/// Closed-form 1-D Earth Mover's Distance between two distributions on the
/// same ordinal scale, with unit ground distance between adjacent scores:
/// `EMD(p, q) = Σ_j |CDF_p(j) − CDF_q(j)|`.
///
/// The result lies in `[0, m − 1]`. Dividing by `scale − 1` (see
/// [`emd_1d_normalized`]) gives a `[0, 1]` distance.
///
/// # Panics
/// Panics if the scales differ.
pub fn emd_1d(a: &RatingDistribution, b: &RatingDistribution) -> f64 {
    assert_eq!(a.scale(), b.scale(), "distributions must share a scale");
    let ca = a.cdf();
    let cb = b.cdf();
    emd_1d_from_cdfs(&ca, &cb)
}

/// The closed-form 1-D EMD evaluated directly on precomputed CDF prefix
/// vectors: `Σ_j |ca[j] − cb[j]|`.
///
/// This is the batched primitive behind [`emd_1d`]: callers that compare
/// one distribution against many (ground-cost matrices between rating
/// maps) compute each CDF once via
/// [`RatingDistribution::cdf_into`](crate::RatingDistribution::cdf_into)
/// and then evaluate every pair allocation-free through this function.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn emd_1d_from_cdfs(ca: &[f64], cb: &[f64]) -> f64 {
    assert_eq!(ca.len(), cb.len(), "CDF vectors must share a scale");
    ca.iter().zip(cb).map(|(x, y)| (x - y).abs()).sum()
}

/// [`emd_1d_from_cdfs`] normalized to `[0, 1]` by the scale diameter
/// `m − 1` (0 when `m <= 1`), mirroring [`emd_1d_normalized`].
#[inline]
pub fn emd_1d_normalized_from_cdfs(ca: &[f64], cb: &[f64]) -> f64 {
    let m = ca.len();
    if m <= 1 {
        return 0.0;
    }
    emd_1d_from_cdfs(ca, cb) / (m as f64 - 1.0)
}

/// [`emd_1d`] normalized to `[0, 1]` by the scale diameter `m − 1`.
///
/// For `m == 1` the distance is defined to be 0 (a single-point scale admits
/// only one distribution).
pub fn emd_1d_normalized(a: &RatingDistribution, b: &RatingDistribution) -> f64 {
    let m = a.scale();
    if m <= 1 {
        return 0.0;
    }
    emd_1d(a, b) / (m as f64 - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist(counts: &[u64]) -> RatingDistribution {
        RatingDistribution::from_counts(counts.to_vec())
    }

    #[test]
    fn tvd_identical_is_zero() {
        let a = dist(&[1, 2, 3, 4, 5]);
        assert_eq!(total_variation(&a, &a), 0.0);
    }

    #[test]
    fn tvd_disjoint_is_one() {
        let a = dist(&[10, 0, 0, 0, 0]);
        let b = dist(&[0, 0, 0, 0, 10]);
        assert!((total_variation(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tvd_symmetric() {
        let a = dist(&[3, 1, 0, 2, 4]);
        let b = dist(&[0, 5, 5, 0, 0]);
        assert!((total_variation(&a, &b) - total_variation(&b, &a)).abs() < 1e-15);
    }

    #[test]
    fn tvd_half_overlap() {
        let a = dist(&[1, 1, 0]);
        let b = dist(&[1, 0, 1]);
        assert!((total_variation(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn kl_identical_is_zero() {
        let a = dist(&[1, 2, 3, 4, 5]);
        assert!(kl_divergence(&a, &a, 1e-6).abs() < 1e-12);
    }

    #[test]
    fn kl_nonnegative_and_asymmetric() {
        let a = dist(&[8, 1, 1, 0, 0]);
        let b = dist(&[0, 0, 1, 1, 8]);
        let ab = kl_divergence(&a, &b, 1e-3);
        let ba = kl_divergence(&b, &a, 1e-3);
        assert!(ab > 0.0);
        assert!(ba > 0.0);
        // These particular histograms are mirror images, so KL is symmetric
        // between them; perturb to observe asymmetry.
        let c = dist(&[5, 4, 1, 0, 0]);
        assert!((kl_divergence(&a, &c, 1e-3) - kl_divergence(&c, &a, 1e-3)).abs() > 1e-6);
        let _ = (ab, ba);
    }

    #[test]
    fn emd_identical_is_zero() {
        let a = dist(&[1, 2, 3, 4, 5]);
        assert_eq!(emd_1d(&a, &a), 0.0);
    }

    #[test]
    fn emd_extremes_is_diameter() {
        let a = dist(&[10, 0, 0, 0, 0]);
        let b = dist(&[0, 0, 0, 0, 10]);
        assert!((emd_1d(&a, &b) - 4.0).abs() < 1e-12);
        assert!((emd_1d_normalized(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn emd_adjacent_mass() {
        // Moving all mass one step costs exactly 1.
        let a = dist(&[0, 10, 0, 0, 0]);
        let b = dist(&[0, 0, 10, 0, 0]);
        assert!((emd_1d(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn emd_triangle_inequality_sample() {
        let a = dist(&[5, 0, 0, 0, 5]);
        let b = dist(&[0, 5, 0, 5, 0]);
        let c = dist(&[0, 0, 10, 0, 0]);
        assert!(emd_1d(&a, &c) <= emd_1d(&a, &b) + emd_1d(&b, &c) + 1e-12);
    }

    #[test]
    fn emd_single_point_scale_is_zero() {
        let a = dist(&[5]);
        let b = dist(&[9]);
        assert_eq!(emd_1d_normalized(&a, &b), 0.0);
    }

    #[test]
    #[should_panic(expected = "share a scale")]
    fn tvd_scale_mismatch_panics() {
        let a = dist(&[1, 1]);
        let b = dist(&[1, 1, 1]);
        let _ = total_variation(&a, &b);
    }
}
