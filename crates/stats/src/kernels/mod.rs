//! Batch kernels over many rating distributions at once — the SIMD layer
//! of the distributional hot path.
//!
//! Every exploration step reduces to the same handful of small-distribution
//! loops: histogram accumulation during the phase scan, CDF prefixes and
//! TVD/KL divergences during score re-estimation, and L1 cost matrices
//! during GMM selection. The rating scale `m` is tiny (typically 5), so
//! vectorizing *within* one distribution is useless — and would reassociate
//! its reductions. This module instead vectorizes across the **batch
//! axis**: one distribution (candidate, subgroup, map pair) per SIMD lane.
//!
//! # Layout
//!
//! Kernels consume **score-major structure-of-arrays** batches: a batch of
//! `lanes` distributions over scale `m` is a flat `m × lanes` buffer in
//! which `counts[j * lanes + i]` is lane `i`'s count for score `j + 1`
//! (see [`BatchScratch`]). Vector loads are then contiguous across the
//! batch while each lane still accumulates in ascending-`j` order.
//!
//! # Byte-identity contract
//!
//! Every path returns bit-identical `f64`s for the same inputs, and those
//! bits equal what the pre-kernel scalar code (`cdf_into`,
//! `total_variation`, `kl_divergence`, `emd_1d_normalized_from_cdfs`,
//! `std_dev`) produced:
//!
//! * Vectorization is across the batch axis only — each lane's reduction
//!   accumulates in the same `j = 0..m` order as the scalar reference, so
//!   no reduction is ever reassociated.
//! * The per-element operations the SIMD paths use (add, sub, mul, div,
//!   sqrt, abs-by-masking, min on finite values, `u64 → f64` conversion)
//!   are IEEE-754 correctly rounded, hence lane-for-lane identical to
//!   their scalar equivalents.
//! * Transcendentals (`ln`, `exp`) are **not** vectorized: SIMD paths
//!   extract lanes and call the same scalar `f64::ln` the reference uses —
//!   a polynomial vector approximation would break the contract.
//! * Integer kernels are exact on every path, so identity there is by
//!   construction. The word-wise set kernels (`and_words`, `andnot_words`,
//!   `popcount_words`) vectorize profitably; the data-dependent ones
//!   (`hist_single`, `gather_u32`, the probe/decode/filter set kernels)
//!   share the scalar body because their `vpgatherdd`-style variants
//!   measured slower than out-of-order scalar loads (see the per-kernel
//!   docs).
//!
//! The contract is pinned by proptests (`kernel_equivalence`) comparing
//! every available path against [`KernelPath::Scalar`] with `to_bits`
//! equality across empty, single-lane, and non-multiple-of-width batches.
//!
//! # Dispatch
//!
//! [`active`] picks the widest available path once per process via
//! `is_x86_feature_detected!`. The environment variable
//! `SUBDEX_KERNEL=scalar|sse2|avx2` overrides the choice (an unknown or
//! unavailable value falls back to auto-detection; `scalar` always works,
//! which is what CI uses to keep the fallback path honest). Every kernel
//! takes its [`KernelPath`] explicitly, so tests and benches can pin all
//! paths against each other in one process without touching the
//! environment.

mod scalar;
#[cfg(target_arch = "x86_64")]
mod x86;

use std::sync::OnceLock;

/// One implementation path of the batch kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelPath {
    /// Portable scalar reference — the semantics every other path must
    /// reproduce bit-for-bit.
    Scalar,
    /// 128-bit SSE2: two `f64` lanes per op.
    Sse2,
    /// 256-bit AVX2: four `f64` lanes per op.
    Avx2,
}

impl KernelPath {
    /// Whether this path can run on the current host.
    pub fn is_available(self) -> bool {
        match self {
            KernelPath::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            KernelPath::Sse2 => std::arch::is_x86_feature_detected!("sse2"),
            #[cfg(target_arch = "x86_64")]
            KernelPath::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// Every path the current host supports, scalar first.
    pub fn available() -> Vec<KernelPath> {
        [KernelPath::Scalar, KernelPath::Sse2, KernelPath::Avx2]
            .into_iter()
            .filter(|p| p.is_available())
            .collect()
    }

    /// Parses an override name as accepted by `SUBDEX_KERNEL`.
    pub fn parse(name: &str) -> Option<KernelPath> {
        match name.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(KernelPath::Scalar),
            "sse2" => Some(KernelPath::Sse2),
            "avx2" => Some(KernelPath::Avx2),
            _ => None,
        }
    }

    /// The override/report name of the path.
    pub fn name(self) -> &'static str {
        match self {
            KernelPath::Scalar => "scalar",
            KernelPath::Sse2 => "sse2",
            KernelPath::Avx2 => "avx2",
        }
    }
}

impl std::fmt::Display for KernelPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

static ACTIVE: OnceLock<KernelPath> = OnceLock::new();

/// The process-wide kernel path: chosen once, first from the
/// `SUBDEX_KERNEL` env override, otherwise as the widest path
/// `is_x86_feature_detected!` reports.
pub fn active() -> KernelPath {
    *ACTIVE.get_or_init(|| {
        if let Ok(v) = std::env::var("SUBDEX_KERNEL") {
            if let Some(p) = KernelPath::parse(&v) {
                if p.is_available() {
                    return p;
                }
            }
        }
        if KernelPath::Avx2.is_available() {
            KernelPath::Avx2
        } else if KernelPath::Sse2.is_available() {
            KernelPath::Sse2
        } else {
            KernelPath::Scalar
        }
    })
}

/// A staged score-major batch of rating distributions: `lanes`
/// distributions over scale `m`, with `counts[j * lanes + i]` the count of
/// lane `i` at score `j + 1` and `totals[i]` the lane's record total.
///
/// The buffers grow to the largest batch seen and are reused across calls;
/// [`shrink`](Self::shrink) releases capacity beyond the most recent batch
/// (the high-water trim primitive used by the scratch pools).
#[derive(Debug, Default)]
pub struct BatchScratch {
    counts: Vec<u64>,
    totals: Vec<u64>,
    lanes: usize,
    scale: usize,
}

impl BatchScratch {
    /// Empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new batch of `lanes` zeroed distributions over `scale`.
    ///
    /// # Panics
    /// Panics if `scale == 0`.
    pub fn begin(&mut self, lanes: usize, scale: usize) {
        assert!(scale > 0, "rating scale must be at least 1");
        self.lanes = lanes;
        self.scale = scale;
        self.counts.clear();
        self.counts.resize(lanes * scale, 0);
        self.totals.clear();
        self.totals.resize(lanes, 0);
    }

    /// Stages one distribution's per-score counts into `lane`, computing
    /// its total (ascending-`j` summation, exact on `u64`).
    ///
    /// # Panics
    /// Panics if `counts.len() != scale` or `lane` is out of range.
    pub fn set_lane(&mut self, lane: usize, counts: &[u64]) {
        assert_eq!(counts.len(), self.scale, "lane scale mismatch");
        let mut total = 0u64;
        for (j, &c) in counts.iter().enumerate() {
            self.counts[j * self.lanes + lane] = c;
            total += c;
        }
        self.totals[lane] = total;
    }

    /// Stages a whole batch: one lane per `rows` item.
    pub fn stage<'a, I>(&mut self, scale: usize, rows: I)
    where
        I: ExactSizeIterator<Item = &'a [u64]>,
    {
        self.begin(rows.len(), scale);
        for (i, row) in rows.enumerate() {
            self.set_lane(i, row);
        }
    }

    /// Number of staged lanes.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The rating scale of the staged batch.
    #[inline]
    pub fn scale(&self) -> usize {
        self.scale
    }

    /// The score-major count buffer (`scale × lanes`).
    #[inline]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Per-lane record totals.
    #[inline]
    pub fn totals(&self) -> &[u64] {
        &self.totals
    }

    /// Heap bytes currently held by the staging buffers.
    pub fn resident_bytes(&self) -> usize {
        self.counts.capacity() * std::mem::size_of::<u64>()
            + self.totals.capacity() * std::mem::size_of::<u64>()
    }

    /// Heap bytes the most recent batch actually needed (length, not
    /// capacity) — the demand signal of the executor's high-water trim.
    pub fn used_bytes(&self) -> usize {
        self.counts.len() * std::mem::size_of::<u64>()
            + self.totals.len() * std::mem::size_of::<u64>()
    }

    /// Releases all retained capacity (the high-water shrink hook).
    pub fn shrink(&mut self) {
        self.counts = Vec::new();
        self.totals = Vec::new();
        self.lanes = 0;
    }
}

/// Asserts the path can run here; called by every dispatching kernel so a
/// forced path from a test or env override can never reach unsupported
/// instructions.
#[inline]
fn check(path: KernelPath) {
    assert!(
        path.is_available(),
        "kernel path {path} is not available on this host"
    );
}

/// Batch CDF prefixes: for every lane, `out[j * lanes + i]` is lane `i`'s
/// cumulative probability at score `j + 1` — bit-identical to
/// `RatingDistribution::cdf_into` per lane (uniform steps for empty
/// lanes). `out` is resized to `scale × lanes`.
pub fn cdf_rows(path: KernelPath, batch: &BatchScratch, out: &mut Vec<f64>) {
    check(path);
    let (lanes, scale) = (batch.lanes, batch.scale);
    out.clear();
    out.resize(lanes * scale, 0.0);
    match path {
        KernelPath::Scalar => scalar::cdf_rows(&batch.counts, &batch.totals, lanes, scale, out),
        #[cfg(target_arch = "x86_64")]
        KernelPath::Sse2 => unsafe {
            x86::cdf_rows_sse2(&batch.counts, &batch.totals, lanes, scale, out)
        },
        #[cfg(target_arch = "x86_64")]
        KernelPath::Avx2 => unsafe {
            x86::cdf_rows_avx2(&batch.counts, &batch.totals, lanes, scale, out)
        },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::cdf_rows(&batch.counts, &batch.totals, lanes, scale, out),
    }
}

/// Batch total-variation distance of every lane against one reference
/// distribution: `out[i] = ½ Σ_j |p_ij − q_j|` with the streaming
/// `prob` semantics of `distance::total_variation` (empty ⇒ uniform).
/// `out` is resized to `lanes`.
///
/// # Panics
/// Panics if `ref_counts.len() != scale`.
pub fn tvd_rows(
    path: KernelPath,
    batch: &BatchScratch,
    ref_counts: &[u64],
    ref_total: u64,
    out: &mut Vec<f64>,
) {
    check(path);
    assert_eq!(ref_counts.len(), batch.scale, "reference scale mismatch");
    let (lanes, scale) = (batch.lanes, batch.scale);
    out.clear();
    out.resize(lanes, 0.0);
    match path {
        KernelPath::Scalar => scalar::tvd_rows(
            &batch.counts,
            &batch.totals,
            lanes,
            scale,
            ref_counts,
            ref_total,
            out,
        ),
        #[cfg(target_arch = "x86_64")]
        KernelPath::Sse2 => unsafe {
            x86::tvd_rows_sse2(
                &batch.counts,
                &batch.totals,
                lanes,
                scale,
                ref_counts,
                ref_total,
                out,
            )
        },
        #[cfg(target_arch = "x86_64")]
        KernelPath::Avx2 => unsafe {
            x86::tvd_rows_avx2(
                &batch.counts,
                &batch.totals,
                lanes,
                scale,
                ref_counts,
                ref_total,
                out,
            )
        },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::tvd_rows(
            &batch.counts,
            &batch.totals,
            lanes,
            scale,
            ref_counts,
            ref_total,
            out,
        ),
    }
}

/// Batch Jeffreys divergence (`KL(p‖q) + KL(q‖p)`, smoothed by `eps`) of
/// every lane against one reference distribution — the symmetrized form
/// behind the KL peculiarity measure, bit-identical per lane to
/// `kl_divergence(a, b, eps) + kl_divergence(b, a, eps)`. `out` is resized
/// to `lanes`.
///
/// # Panics
/// Panics if `ref_counts.len() != scale` or `eps <= 0`.
pub fn jeffreys_rows(
    path: KernelPath,
    batch: &BatchScratch,
    ref_counts: &[u64],
    ref_total: u64,
    eps: f64,
    out: &mut Vec<f64>,
) {
    check(path);
    assert_eq!(ref_counts.len(), batch.scale, "reference scale mismatch");
    assert!(eps > 0.0, "smoothing epsilon must be positive");
    let (lanes, scale) = (batch.lanes, batch.scale);
    out.clear();
    out.resize(lanes, 0.0);
    match path {
        KernelPath::Scalar => scalar::jeffreys_rows(
            &batch.counts,
            &batch.totals,
            lanes,
            scale,
            ref_counts,
            ref_total,
            eps,
            out,
        ),
        #[cfg(target_arch = "x86_64")]
        KernelPath::Sse2 => unsafe {
            x86::jeffreys_rows_sse2(
                &batch.counts,
                &batch.totals,
                lanes,
                scale,
                ref_counts,
                ref_total,
                eps,
                out,
            )
        },
        #[cfg(target_arch = "x86_64")]
        KernelPath::Avx2 => unsafe {
            x86::jeffreys_rows_avx2(
                &batch.counts,
                &batch.totals,
                lanes,
                scale,
                ref_counts,
                ref_total,
                eps,
                out,
            )
        },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::jeffreys_rows(
            &batch.counts,
            &batch.totals,
            lanes,
            scale,
            ref_counts,
            ref_total,
            eps,
            out,
        ),
    }
}

/// Batch mean and population standard deviation per lane, bit-identical to
/// `RatingDistribution::{mean, std_dev}`. Empty lanes yield NaN in both
/// outputs (the scalar API's `None`); callers filter on
/// `batch.totals()`. Both outputs are resized to `lanes`.
pub fn mean_sd_rows(
    path: KernelPath,
    batch: &BatchScratch,
    out_mean: &mut Vec<f64>,
    out_sd: &mut Vec<f64>,
) {
    check(path);
    let (lanes, scale) = (batch.lanes, batch.scale);
    out_mean.clear();
    out_mean.resize(lanes, 0.0);
    out_sd.clear();
    out_sd.resize(lanes, 0.0);
    match path {
        KernelPath::Scalar => {
            scalar::mean_sd_rows(&batch.counts, &batch.totals, lanes, scale, out_mean, out_sd)
        }
        #[cfg(target_arch = "x86_64")]
        KernelPath::Sse2 => unsafe {
            x86::mean_sd_rows_sse2(&batch.counts, &batch.totals, lanes, scale, out_mean, out_sd)
        },
        #[cfg(target_arch = "x86_64")]
        KernelPath::Avx2 => unsafe {
            x86::mean_sd_rows_avx2(&batch.counts, &batch.totals, lanes, scale, out_mean, out_sd)
        },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::mean_sd_rows(&batch.counts, &batch.totals, lanes, scale, out_mean, out_sd),
    }
}

/// Batch normalized L1 distance of score-major `vals` (e.g. staged mixture
/// CDFs, `scale × lanes`) against one reference vector:
/// `out[i] = Σ_j |vals_ij − ref_j| / (m − 1)`, 0 when `m <= 1` — the
/// batched `emd_1d_normalized_from_cdfs`. `out` is resized to `lanes`.
///
/// # Panics
/// Panics if `vals.len() != scale * lanes` or `reference.len() != scale`.
pub fn l1_norm_rows(
    path: KernelPath,
    vals: &[f64],
    lanes: usize,
    scale: usize,
    reference: &[f64],
    out: &mut Vec<f64>,
) {
    check(path);
    assert_eq!(vals.len(), lanes * scale, "batch shape mismatch");
    assert_eq!(reference.len(), scale, "reference scale mismatch");
    out.clear();
    out.resize(lanes, 0.0);
    if scale <= 1 {
        return;
    }
    match path {
        KernelPath::Scalar => scalar::l1_norm_rows(vals, lanes, scale, reference, out),
        #[cfg(target_arch = "x86_64")]
        KernelPath::Sse2 => unsafe { x86::l1_norm_rows_sse2(vals, lanes, scale, reference, out) },
        #[cfg(target_arch = "x86_64")]
        KernelPath::Avx2 => unsafe { x86::l1_norm_rows_avx2(vals, lanes, scale, reference, out) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::l1_norm_rows(vals, lanes, scale, reference, out),
    }
}

/// Ground-cost matrix between two signature CDF sets: `a` and `b` are
/// score-major (`scale × a_lanes` / `scale × b_lanes`) CDF batches, and
/// `out[i * b_lanes + j]` becomes the normalized 1-D EMD
/// `Σ_k |a_ki − b_kj| / (m − 1)` (0 when `m <= 1`) — bit-identical to
/// `emd_1d_normalized_from_cdfs` per cell. `out` is resized to
/// `a_lanes × b_lanes`.
///
/// # Panics
/// Panics if the batch shapes are inconsistent with `scale`.
pub fn cost_matrix(
    path: KernelPath,
    a: &[f64],
    a_lanes: usize,
    b: &[f64],
    b_lanes: usize,
    scale: usize,
    out: &mut Vec<f64>,
) {
    check(path);
    assert_eq!(a.len(), a_lanes * scale, "left batch shape mismatch");
    assert_eq!(b.len(), b_lanes * scale, "right batch shape mismatch");
    out.clear();
    out.resize(a_lanes * b_lanes, 0.0);
    if scale <= 1 {
        return;
    }
    match path {
        KernelPath::Scalar => scalar::cost_matrix(a, a_lanes, b, b_lanes, scale, out),
        #[cfg(target_arch = "x86_64")]
        KernelPath::Sse2 => unsafe { x86::cost_matrix_sse2(a, a_lanes, b, b_lanes, scale, out) },
        #[cfg(target_arch = "x86_64")]
        KernelPath::Avx2 => unsafe { x86::cost_matrix_avx2(a, a_lanes, b, b_lanes, scale, out) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::cost_matrix(a, a_lanes, b, b_lanes, scale, out),
    }
}

/// Per-column minimum of a row-major `rows × cols` matrix, scanning rows
/// in ascending order from `f64::INFINITY` — the demand side of the
/// independent-minimization EMD lower bound. Exact under vectorization:
/// `min` on finite, non-negative costs is associative value- and
/// bit-wise. `out` is resized to `cols`.
///
/// # Panics
/// Panics if `mat.len() != rows * cols`.
pub fn col_mins(path: KernelPath, mat: &[f64], rows: usize, cols: usize, out: &mut Vec<f64>) {
    check(path);
    assert_eq!(mat.len(), rows * cols, "matrix shape mismatch");
    out.clear();
    out.resize(cols, f64::INFINITY);
    match path {
        KernelPath::Scalar => scalar::col_mins(mat, rows, cols, out),
        #[cfg(target_arch = "x86_64")]
        KernelPath::Sse2 => unsafe { x86::col_mins_sse2(mat, rows, cols, out) },
        #[cfg(target_arch = "x86_64")]
        KernelPath::Avx2 => unsafe { x86::col_mins_avx2(mat, rows, cols, out) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::col_mins(mat, rows, cols, out),
    }
}

/// Histogram accumulation for a single-valued grouping column:
/// `counts[codes[rows[r]] * scale + (scores[r] − 1)] += 1` per record.
/// All paths share the scalar kernel: the increments are data-dependent
/// scatter updates no lane model helps with, and an AVX2 variant that
/// vectorized the code gather and flat-index arithmetic *measured ~1.5×
/// slower* than scalar (`vpgatherdd` latency on cache-resident random
/// access, with the `u64` increments scalar either way — see
/// `BENCH_kernels.json`), so it was retired. The `path` argument stays for
/// API uniformity and future ISAs where scatter/gather histograms do pay.
///
/// # Panics
/// Panics if a row exceeds `codes`, a flat index exceeds `counts`, or
/// `rows` and `scores` differ in length.
pub fn hist_single(
    path: KernelPath,
    rows: &[u32],
    scores: &[u8],
    codes: &[u32],
    scale: usize,
    counts: &mut [u64],
) {
    check(path);
    assert_eq!(rows.len(), scores.len(), "row/score length mismatch");
    scalar::hist_single(rows, scores, codes, scale, counts)
}

// --------------------------------------------------------------- set kernels
//
// Word-wise set algebra for the compressed posting index (`store::cindex`).
// Everything here is exact integer arithmetic, so byte-identity across
// paths holds by construction; the proptests still pin it.

/// Word-wise intersection `acc[i] &= other[i]` over the common prefix —
/// the bitmap∧bitmap step of container intersection and the bulk path
/// under `BitSet::intersect_with_ids`. Words of `acc` beyond
/// `other.len()` are untouched (callers align capacities; the compressed
/// index always intersects equal-domain bitmaps).
pub fn and_words(path: KernelPath, acc: &mut [u64], other: &[u64]) {
    check(path);
    match path {
        KernelPath::Scalar => scalar::and_words(acc, other),
        #[cfg(target_arch = "x86_64")]
        KernelPath::Sse2 => unsafe { x86::and_words_sse2(acc, other) },
        #[cfg(target_arch = "x86_64")]
        KernelPath::Avx2 => unsafe { x86::and_words_avx2(acc, other) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::and_words(acc, other),
    }
}

/// Word-wise difference `acc[i] &= !other[i]` over the common prefix —
/// the complement step for future NOT-predicates and the run-container
/// subtraction primitive.
pub fn andnot_words(path: KernelPath, acc: &mut [u64], other: &[u64]) {
    check(path);
    match path {
        KernelPath::Scalar => scalar::andnot_words(acc, other),
        #[cfg(target_arch = "x86_64")]
        KernelPath::Sse2 => unsafe { x86::andnot_words_sse2(acc, other) },
        #[cfg(target_arch = "x86_64")]
        KernelPath::Avx2 => unsafe { x86::andnot_words_avx2(acc, other) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::andnot_words(acc, other),
    }
}

/// Total population count of a word slice — the exact-cardinality read
/// the planner's cost rules run on. The SSE2 path shares the scalar
/// kernel: baseline x86-64 has neither `popcnt` nor the `pshufb` the
/// nibble-LUT method needs (SSSE3), and `count_ones` already compiles to
/// a fast bit-twiddling sequence. AVX2 uses the Muła nibble-LUT +
/// `sad_epu8` reduction, which is integer-exact.
pub fn popcount_words(path: KernelPath, words: &[u64]) -> u64 {
    check(path);
    match path {
        KernelPath::Scalar => scalar::popcount_words(words),
        #[cfg(target_arch = "x86_64")]
        KernelPath::Sse2 => scalar::popcount_words(words),
        #[cfg(target_arch = "x86_64")]
        KernelPath::Avx2 => unsafe { x86::popcount_words_avx2(words) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::popcount_words(words),
    }
}

/// Retains the ids of sorted `ids` whose bit is set in `words`, appended
/// to `out` in ascending order — the array∩bitmap probe of container
/// intersection. All paths share the scalar kernel: the per-id word
/// lookup is data-dependent random access that a lane model doesn't
/// help with (the same access pattern that made the `vpgatherdd`
/// variants of `hist_single`/`gather_u32` measure slower than scalar),
/// and the branchless compaction already keeps the pipeline full. The
/// `path` argument stays for API uniformity.
pub fn array_bitmap_probe(path: KernelPath, ids: &[u32], words: &[u64], out: &mut Vec<u32>) {
    check(path);
    scalar::array_bitmap_probe(ids, words, out)
}

/// Intersection of two sorted unique id lists, appended to `out` in
/// ascending order — the array∧array step of container intersection.
/// Gallops through the longer side when the lengths are skewed (>8×),
/// two-pointer merge otherwise. All paths share the scalar kernel: both
/// loop shapes are control-flow over compares, not element-wise
/// arithmetic, so there is nothing for a lane model to vectorize
/// without changing the comparison order.
pub fn intersect_sorted_u32(path: KernelPath, a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    check(path);
    scalar::intersect_sorted_u32(a, b, out)
}

/// Decodes the set bits of `words` into ascending ids appended to `out`
/// — the container→id decode into reusable scratch. All paths share the
/// scalar kernel: `trailing_zeros` + clear-lowest-bit consumes each word
/// in population-proportional time and compiles to `tzcnt`/`blsr` where
/// available; a vector expansion would emit per-bit variable-length
/// output, which lane models handle poorly.
pub fn decode_words(path: KernelPath, words: &[u64], out: &mut Vec<u32>) {
    check(path);
    scalar::decode_words(words, out)
}

/// Appends every position `i` (ascending) where `a_rows[i]` is present
/// in `a_words` (when `Some`) and `b_rows[i]` is present in `b_words`
/// (when `Some`) — the membership probe behind index-driven group
/// materialization (full rating-table scan) and multi-predicate column
/// derivation (parent-column scan). A `None` side always passes. All
/// paths share the scalar kernel: the two per-record word lookups are
/// data-dependent gathers (see `gather_u32`'s retired-SIMD note), and
/// the branchless compaction write is scalar either way.
pub fn filter_rows(
    path: KernelPath,
    a_rows: &[u32],
    b_rows: &[u32],
    a_words: Option<&[u64]>,
    b_words: Option<&[u64]>,
    out: &mut Vec<u32>,
) {
    check(path);
    assert_eq!(a_rows.len(), b_rows.len(), "row column length mismatch");
    scalar::filter_rows(a_rows, b_rows, a_words, b_words, out)
}

/// Gather `out[k] = src[idx[k]]` — the entity-row/record-id gather of the
/// scan layer. All paths share the scalar kernel: a `vpgatherdd` AVX2
/// variant *measured slower* than the scalar loop on both sorted
/// (scan-shaped) and random index streams (the gather's issue cost plus a
/// per-call bounds-validation scan lose to out-of-order scalar loads — see
/// `BENCH_kernels.json`), so it was retired; the `path` argument stays for
/// API uniformity. The output length and capacity are sized exactly to
/// `idx.len()` (cache byte budgets rely on unpadded capacities).
///
/// # Panics
/// Panics if any index is out of range.
pub fn gather_u32(path: KernelPath, src: &[u32], idx: &[u32], out: &mut Vec<u32>) {
    check(path);
    out.clear();
    out.reserve_exact(idx.len());
    out.resize(idx.len(), 0);
    scalar::gather_u32(src, idx, out)
}
