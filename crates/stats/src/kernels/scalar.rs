//! Portable scalar reference implementations of the batch kernels.
//!
//! These are the semantics every SIMD path must reproduce bit-for-bit.
//! Each kernel is written as a per-lane helper (reused by the SIMD paths
//! for non-multiple-of-width tails) plus a batch loop. The per-lane
//! arithmetic mirrors the pre-kernel scalar code expression-for-expression
//! — `prob` streaming, left-associated products, ascending-`j` sums — so
//! kernelized callers keep producing the bytes they always produced.

// Index-based loops are deliberate throughout: they mirror the SIMD
// paths' lane/score indexing one-for-one, which is what makes the
// byte-identity review tractable.
#![allow(clippy::needless_range_loop)]

/// Probability of one score bucket (empty ⇒ uniform `1/m`), matching
/// `distance::prob`.
#[inline]
pub(crate) fn prob(count: u64, total: u64, m: f64) -> f64 {
    if total == 0 {
        1.0 / m
    } else {
        count as f64 / total as f64
    }
}

/// CDF prefix of one lane, written in place — mirrors
/// `RatingDistribution::cdf_into`.
#[inline]
pub(crate) fn cdf_lane(
    counts: &[u64],
    totals: &[u64],
    lanes: usize,
    scale: usize,
    i: usize,
    out: &mut [f64],
) {
    let total = totals[i];
    let mut acc = 0.0;
    if total == 0 {
        let u = 1.0 / scale as f64;
        for j in 0..scale {
            acc += u;
            out[j * lanes + i] = acc;
        }
    } else {
        let inv = total as f64;
        for j in 0..scale {
            acc += counts[j * lanes + i] as f64 / inv;
            out[j * lanes + i] = acc;
        }
    }
}

pub(crate) fn cdf_rows(
    counts: &[u64],
    totals: &[u64],
    lanes: usize,
    scale: usize,
    out: &mut [f64],
) {
    for i in 0..lanes {
        cdf_lane(counts, totals, lanes, scale, i, out);
    }
}

/// Total-variation distance of one lane against the reference — mirrors
/// `distance::total_variation`'s streaming loop.
#[inline]
pub(crate) fn tvd_lane(
    counts: &[u64],
    totals: &[u64],
    lanes: usize,
    scale: usize,
    ref_counts: &[u64],
    ref_total: u64,
    i: usize,
) -> f64 {
    let m = scale as f64;
    let t = totals[i];
    let mut sum = 0.0;
    for j in 0..scale {
        let p = prob(counts[j * lanes + i], t, m);
        let q = prob(ref_counts[j], ref_total, m);
        sum += (p - q).abs();
    }
    0.5 * sum
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn tvd_rows(
    counts: &[u64],
    totals: &[u64],
    lanes: usize,
    scale: usize,
    ref_counts: &[u64],
    ref_total: u64,
    out: &mut [f64],
) {
    for i in 0..lanes {
        out[i] = tvd_lane(counts, totals, lanes, scale, ref_counts, ref_total, i);
    }
}

/// Smoothed Jeffreys divergence of one lane against the reference —
/// the two directed KL sums of `distance::kl_divergence`, each
/// accumulated in `j` order, added once at the end.
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) fn jeffreys_lane(
    counts: &[u64],
    totals: &[u64],
    lanes: usize,
    scale: usize,
    ref_counts: &[u64],
    ref_total: u64,
    eps: f64,
    i: usize,
) -> f64 {
    let m = scale as f64;
    let norm = 1.0 + m * eps;
    let t = totals[i];
    let mut ab = 0.0;
    let mut ba = 0.0;
    for j in 0..scale {
        let p = (prob(counts[j * lanes + i], t, m) + eps) / norm;
        let q = (prob(ref_counts[j], ref_total, m) + eps) / norm;
        ab += p * (p / q).ln();
        ba += q * (q / p).ln();
    }
    ab + ba
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn jeffreys_rows(
    counts: &[u64],
    totals: &[u64],
    lanes: usize,
    scale: usize,
    ref_counts: &[u64],
    ref_total: u64,
    eps: f64,
    out: &mut [f64],
) {
    for i in 0..lanes {
        out[i] = jeffreys_lane(counts, totals, lanes, scale, ref_counts, ref_total, eps, i);
    }
}

/// Mean and population SD of one lane — mirrors
/// `RatingDistribution::{mean, std_dev}`; empty lanes yield NaN.
#[inline]
pub(crate) fn mean_sd_lane(
    counts: &[u64],
    totals: &[u64],
    lanes: usize,
    scale: usize,
    i: usize,
) -> (f64, f64) {
    let total = totals[i] as f64;
    let mut sum = 0.0;
    for j in 0..scale {
        sum += (j as f64 + 1.0) * counts[j * lanes + i] as f64;
    }
    let mean = sum / total;
    let mut ss = 0.0;
    for j in 0..scale {
        let d = (j as f64 + 1.0) - mean;
        ss += d * d * counts[j * lanes + i] as f64;
    }
    (mean, (ss / total).sqrt())
}

pub(crate) fn mean_sd_rows(
    counts: &[u64],
    totals: &[u64],
    lanes: usize,
    scale: usize,
    out_mean: &mut [f64],
    out_sd: &mut [f64],
) {
    for i in 0..lanes {
        let (mean, sd) = mean_sd_lane(counts, totals, lanes, scale, i);
        out_mean[i] = mean;
        out_sd[i] = sd;
    }
}

/// Normalized L1 distance of one score-major lane against the reference —
/// mirrors `distance::emd_1d_normalized_from_cdfs` (callers handle the
/// `scale <= 1` short-circuit).
#[inline]
pub(crate) fn l1_norm_lane(
    vals: &[f64],
    lanes: usize,
    scale: usize,
    reference: &[f64],
    i: usize,
) -> f64 {
    let mut sum = 0.0;
    for j in 0..scale {
        sum += (vals[j * lanes + i] - reference[j]).abs();
    }
    sum / (scale as f64 - 1.0)
}

pub(crate) fn l1_norm_rows(
    vals: &[f64],
    lanes: usize,
    scale: usize,
    reference: &[f64],
    out: &mut [f64],
) {
    for i in 0..lanes {
        out[i] = l1_norm_lane(vals, lanes, scale, reference, i);
    }
}

/// One ground-cost cell between score-major CDF batches (callers handle
/// the `scale <= 1` short-circuit).
#[inline]
pub(crate) fn cost_cell(
    a: &[f64],
    a_lanes: usize,
    b: &[f64],
    b_lanes: usize,
    scale: usize,
    i: usize,
    j: usize,
) -> f64 {
    let mut sum = 0.0;
    for k in 0..scale {
        sum += (a[k * a_lanes + i] - b[k * b_lanes + j]).abs();
    }
    sum / (scale as f64 - 1.0)
}

pub(crate) fn cost_matrix(
    a: &[f64],
    a_lanes: usize,
    b: &[f64],
    b_lanes: usize,
    scale: usize,
    out: &mut [f64],
) {
    for i in 0..a_lanes {
        for j in 0..b_lanes {
            out[i * b_lanes + j] = cost_cell(a, a_lanes, b, b_lanes, scale, i, j);
        }
    }
}

/// Minimum of one column, rows ascending from `f64::INFINITY` — mirrors
/// the demand-side loop of the matrix lower bound.
#[inline]
pub(crate) fn col_min(mat: &[f64], rows: usize, cols: usize, j: usize) -> f64 {
    let mut min = f64::INFINITY;
    for i in 0..rows {
        min = min.min(mat[i * cols + j]);
    }
    min
}

pub(crate) fn col_mins(mat: &[f64], rows: usize, cols: usize, out: &mut [f64]) {
    for (j, slot) in out.iter_mut().enumerate().take(cols) {
        *slot = col_min(mat, rows, cols, j);
    }
}

/// One histogram update of the single-valued grouping kernel.
#[inline]
pub(crate) fn hist_one(row: u32, score: u8, codes: &[u32], scale: usize, counts: &mut [u64]) {
    counts[codes[row as usize] as usize * scale + (score as usize - 1)] += 1;
}

pub(crate) fn hist_single(
    rows: &[u32],
    scores: &[u8],
    codes: &[u32],
    scale: usize,
    counts: &mut [u64],
) {
    for (&row, &score) in rows.iter().zip(scores) {
        hist_one(row, score, codes, scale, counts);
    }
}

pub(crate) fn gather_u32(src: &[u32], idx: &[u32], out: &mut [u32]) {
    for (slot, &i) in out.iter_mut().zip(idx) {
        *slot = src[i as usize];
    }
}

// --------------------------------------------------------------- set kernels
//
// Word-wise set algebra over `u64` bitmap words plus sorted-`u32` id lists —
// the compressed-posting-index primitives. All operations are exact integer
// arithmetic, so every SIMD path is bit-identical by construction.

pub(crate) fn and_words(acc: &mut [u64], other: &[u64]) {
    for (a, &b) in acc.iter_mut().zip(other) {
        *a &= b;
    }
}

pub(crate) fn andnot_words(acc: &mut [u64], other: &[u64]) {
    for (a, &b) in acc.iter_mut().zip(other) {
        *a &= !b;
    }
}

pub(crate) fn popcount_words(words: &[u64]) -> u64 {
    let mut n = 0u64;
    for &w in words {
        n += u64::from(w.count_ones());
    }
    n
}

/// Whether bit `id` is set in `words` (absent when past the end).
#[inline]
pub(crate) fn word_bit(words: &[u64], id: u32) -> bool {
    let w = id as usize >> 6;
    w < words.len() && (words[w] >> (id & 63)) & 1 == 1
}

/// Retains the ids of sorted list `ids` whose bit is set in `words`,
/// appending to `out`. Branchless compaction: every id is written at the
/// output cursor unconditionally and the cursor advances only on a match,
/// so near-50% selectivity does not stall on branch mispredictions.
pub(crate) fn array_bitmap_probe(ids: &[u32], words: &[u64], out: &mut Vec<u32>) {
    let start = out.len();
    out.resize(start + ids.len(), 0);
    let dst = &mut out[start..];
    let mut n = 0usize;
    for &id in ids {
        dst[n] = id;
        n += usize::from(word_bit(words, id));
    }
    out.truncate(start + n);
}

/// Intersection of two sorted unique `u32` lists, appended to `out` in
/// ascending order. Gallops through the longer list when the lengths are
/// skewed (binary-search doubling probes), two-pointer merge otherwise.
pub(crate) fn intersect_sorted_u32(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return;
    }
    if large.len() / 8 > small.len() {
        // Galloping: for each id of the small list, advance a lower bound
        // into the large list by exponential probing + binary search.
        let mut lo = 0usize;
        for &id in small {
            let mut step = 1usize;
            let mut hi = lo;
            while hi < large.len() && large[hi] < id {
                lo = hi;
                hi += step;
                step <<= 1;
            }
            let hi = hi.min(large.len());
            lo += large[lo..hi].partition_point(|&x| x < id);
            if lo < large.len() && large[lo] == id {
                out.push(id);
                lo += 1;
            }
        }
    } else {
        let mut i = 0usize;
        let mut j = 0usize;
        while i < small.len() && j < large.len() {
            let (x, y) = (small[i], large[j]);
            if x == y {
                out.push(x);
                i += 1;
                j += 1;
            } else if x < y {
                i += 1;
            } else {
                j += 1;
            }
        }
    }
}

/// Decodes the set bits of `words` into ascending ids appended to `out` —
/// the container→id decode. `trailing_zeros` word iteration: each word is
/// consumed by clearing its lowest set bit, so cost is proportional to the
/// population, not the domain.
pub(crate) fn decode_words(words: &[u64], out: &mut Vec<u32>) {
    for (wi, &word) in words.iter().enumerate() {
        let mut w = word;
        let base = (wi * 64) as u32;
        while w != 0 {
            out.push(base + w.trailing_zeros());
            w &= w - 1;
        }
    }
}

/// Appends every position `i` where `a_rows[i]` passes `a_words` (when
/// present) and `b_rows[i]` passes `b_words` (when present) — the
/// full-scan membership probe behind index-driven group materialization
/// and multi-predicate column derivation. Positions come out ascending.
/// Branchless compaction, one loop shape per side-combination so the
/// absent-side test is hoisted out of the record loop.
pub(crate) fn filter_rows(
    a_rows: &[u32],
    b_rows: &[u32],
    a_words: Option<&[u64]>,
    b_words: Option<&[u64]>,
    out: &mut Vec<u32>,
) {
    let start = out.len();
    let n_in = a_rows.len();
    out.resize(start + n_in, 0);
    let dst = &mut out[start..];
    let mut n = 0usize;
    match (a_words, b_words) {
        (Some(aw), Some(bw)) => {
            for i in 0..n_in {
                dst[n] = i as u32;
                n += usize::from(word_bit(aw, a_rows[i]) & word_bit(bw, b_rows[i]));
            }
        }
        (Some(aw), None) => {
            for (i, &row) in a_rows.iter().enumerate() {
                dst[n] = i as u32;
                n += usize::from(word_bit(aw, row));
            }
        }
        (None, Some(bw)) => {
            for (i, &row) in b_rows.iter().enumerate() {
                dst[n] = i as u32;
                n += usize::from(word_bit(bw, row));
            }
        }
        (None, None) => {
            for (i, slot) in dst.iter_mut().enumerate() {
                *slot = i as u32;
            }
            n = n_in;
        }
    }
    out.truncate(start + n);
}
