//! Portable scalar reference implementations of the batch kernels.
//!
//! These are the semantics every SIMD path must reproduce bit-for-bit.
//! Each kernel is written as a per-lane helper (reused by the SIMD paths
//! for non-multiple-of-width tails) plus a batch loop. The per-lane
//! arithmetic mirrors the pre-kernel scalar code expression-for-expression
//! — `prob` streaming, left-associated products, ascending-`j` sums — so
//! kernelized callers keep producing the bytes they always produced.

// Index-based loops are deliberate throughout: they mirror the SIMD
// paths' lane/score indexing one-for-one, which is what makes the
// byte-identity review tractable.
#![allow(clippy::needless_range_loop)]

/// Probability of one score bucket (empty ⇒ uniform `1/m`), matching
/// `distance::prob`.
#[inline]
pub(crate) fn prob(count: u64, total: u64, m: f64) -> f64 {
    if total == 0 {
        1.0 / m
    } else {
        count as f64 / total as f64
    }
}

/// CDF prefix of one lane, written in place — mirrors
/// `RatingDistribution::cdf_into`.
#[inline]
pub(crate) fn cdf_lane(
    counts: &[u64],
    totals: &[u64],
    lanes: usize,
    scale: usize,
    i: usize,
    out: &mut [f64],
) {
    let total = totals[i];
    let mut acc = 0.0;
    if total == 0 {
        let u = 1.0 / scale as f64;
        for j in 0..scale {
            acc += u;
            out[j * lanes + i] = acc;
        }
    } else {
        let inv = total as f64;
        for j in 0..scale {
            acc += counts[j * lanes + i] as f64 / inv;
            out[j * lanes + i] = acc;
        }
    }
}

pub(crate) fn cdf_rows(
    counts: &[u64],
    totals: &[u64],
    lanes: usize,
    scale: usize,
    out: &mut [f64],
) {
    for i in 0..lanes {
        cdf_lane(counts, totals, lanes, scale, i, out);
    }
}

/// Total-variation distance of one lane against the reference — mirrors
/// `distance::total_variation`'s streaming loop.
#[inline]
pub(crate) fn tvd_lane(
    counts: &[u64],
    totals: &[u64],
    lanes: usize,
    scale: usize,
    ref_counts: &[u64],
    ref_total: u64,
    i: usize,
) -> f64 {
    let m = scale as f64;
    let t = totals[i];
    let mut sum = 0.0;
    for j in 0..scale {
        let p = prob(counts[j * lanes + i], t, m);
        let q = prob(ref_counts[j], ref_total, m);
        sum += (p - q).abs();
    }
    0.5 * sum
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn tvd_rows(
    counts: &[u64],
    totals: &[u64],
    lanes: usize,
    scale: usize,
    ref_counts: &[u64],
    ref_total: u64,
    out: &mut [f64],
) {
    for i in 0..lanes {
        out[i] = tvd_lane(counts, totals, lanes, scale, ref_counts, ref_total, i);
    }
}

/// Smoothed Jeffreys divergence of one lane against the reference —
/// the two directed KL sums of `distance::kl_divergence`, each
/// accumulated in `j` order, added once at the end.
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) fn jeffreys_lane(
    counts: &[u64],
    totals: &[u64],
    lanes: usize,
    scale: usize,
    ref_counts: &[u64],
    ref_total: u64,
    eps: f64,
    i: usize,
) -> f64 {
    let m = scale as f64;
    let norm = 1.0 + m * eps;
    let t = totals[i];
    let mut ab = 0.0;
    let mut ba = 0.0;
    for j in 0..scale {
        let p = (prob(counts[j * lanes + i], t, m) + eps) / norm;
        let q = (prob(ref_counts[j], ref_total, m) + eps) / norm;
        ab += p * (p / q).ln();
        ba += q * (q / p).ln();
    }
    ab + ba
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn jeffreys_rows(
    counts: &[u64],
    totals: &[u64],
    lanes: usize,
    scale: usize,
    ref_counts: &[u64],
    ref_total: u64,
    eps: f64,
    out: &mut [f64],
) {
    for i in 0..lanes {
        out[i] = jeffreys_lane(counts, totals, lanes, scale, ref_counts, ref_total, eps, i);
    }
}

/// Mean and population SD of one lane — mirrors
/// `RatingDistribution::{mean, std_dev}`; empty lanes yield NaN.
#[inline]
pub(crate) fn mean_sd_lane(
    counts: &[u64],
    totals: &[u64],
    lanes: usize,
    scale: usize,
    i: usize,
) -> (f64, f64) {
    let total = totals[i] as f64;
    let mut sum = 0.0;
    for j in 0..scale {
        sum += (j as f64 + 1.0) * counts[j * lanes + i] as f64;
    }
    let mean = sum / total;
    let mut ss = 0.0;
    for j in 0..scale {
        let d = (j as f64 + 1.0) - mean;
        ss += d * d * counts[j * lanes + i] as f64;
    }
    (mean, (ss / total).sqrt())
}

pub(crate) fn mean_sd_rows(
    counts: &[u64],
    totals: &[u64],
    lanes: usize,
    scale: usize,
    out_mean: &mut [f64],
    out_sd: &mut [f64],
) {
    for i in 0..lanes {
        let (mean, sd) = mean_sd_lane(counts, totals, lanes, scale, i);
        out_mean[i] = mean;
        out_sd[i] = sd;
    }
}

/// Normalized L1 distance of one score-major lane against the reference —
/// mirrors `distance::emd_1d_normalized_from_cdfs` (callers handle the
/// `scale <= 1` short-circuit).
#[inline]
pub(crate) fn l1_norm_lane(
    vals: &[f64],
    lanes: usize,
    scale: usize,
    reference: &[f64],
    i: usize,
) -> f64 {
    let mut sum = 0.0;
    for j in 0..scale {
        sum += (vals[j * lanes + i] - reference[j]).abs();
    }
    sum / (scale as f64 - 1.0)
}

pub(crate) fn l1_norm_rows(
    vals: &[f64],
    lanes: usize,
    scale: usize,
    reference: &[f64],
    out: &mut [f64],
) {
    for i in 0..lanes {
        out[i] = l1_norm_lane(vals, lanes, scale, reference, i);
    }
}

/// One ground-cost cell between score-major CDF batches (callers handle
/// the `scale <= 1` short-circuit).
#[inline]
pub(crate) fn cost_cell(
    a: &[f64],
    a_lanes: usize,
    b: &[f64],
    b_lanes: usize,
    scale: usize,
    i: usize,
    j: usize,
) -> f64 {
    let mut sum = 0.0;
    for k in 0..scale {
        sum += (a[k * a_lanes + i] - b[k * b_lanes + j]).abs();
    }
    sum / (scale as f64 - 1.0)
}

pub(crate) fn cost_matrix(
    a: &[f64],
    a_lanes: usize,
    b: &[f64],
    b_lanes: usize,
    scale: usize,
    out: &mut [f64],
) {
    for i in 0..a_lanes {
        for j in 0..b_lanes {
            out[i * b_lanes + j] = cost_cell(a, a_lanes, b, b_lanes, scale, i, j);
        }
    }
}

/// Minimum of one column, rows ascending from `f64::INFINITY` — mirrors
/// the demand-side loop of the matrix lower bound.
#[inline]
pub(crate) fn col_min(mat: &[f64], rows: usize, cols: usize, j: usize) -> f64 {
    let mut min = f64::INFINITY;
    for i in 0..rows {
        min = min.min(mat[i * cols + j]);
    }
    min
}

pub(crate) fn col_mins(mat: &[f64], rows: usize, cols: usize, out: &mut [f64]) {
    for (j, slot) in out.iter_mut().enumerate().take(cols) {
        *slot = col_min(mat, rows, cols, j);
    }
}

/// One histogram update of the single-valued grouping kernel.
#[inline]
pub(crate) fn hist_one(row: u32, score: u8, codes: &[u32], scale: usize, counts: &mut [u64]) {
    counts[codes[row as usize] as usize * scale + (score as usize - 1)] += 1;
}

pub(crate) fn hist_single(
    rows: &[u32],
    scores: &[u8],
    codes: &[u32],
    scale: usize,
    counts: &mut [u64],
) {
    for (&row, &score) in rows.iter().zip(scores) {
        hist_one(row, score, codes, scale, counts);
    }
}

pub(crate) fn gather_u32(src: &[u32], idx: &[u32], out: &mut [u32]) {
    for (slot, &i) in out.iter_mut().zip(idx) {
        *slot = src[i as usize];
    }
}
