//! x86_64 SSE2/AVX2 implementations of the batch kernels.
//!
//! One generic body per kernel, written against the tiny [`Simd`]
//! abstraction below and instantiated at 2 lanes (SSE2) and 4 lanes
//! (AVX2) inside `#[target_feature]` shells. Bodies are `#[inline(always)]`
//! so they specialize into the shells and codegen under the enabled
//! feature set.
//!
//! Byte-identity notes (see the module docs in `kernels`):
//! * `u64 → f64` conversion happens lane-by-lane with Rust's `as f64`
//!   (correctly rounded, identical to the scalar reference) before the
//!   values are packed into a vector.
//! * Empty lanes (`total == 0`) are handled by building a per-lane bitmask
//!   from the totals and `select`ing the uniform-distribution constant
//!   over the (possibly NaN) division result — exactly the branch the
//!   scalar reference takes.
//! * `ln` is evaluated by extracting lanes and calling scalar `f64::ln`;
//!   the surrounding multiplies/adds stay vectorized.
//! * Tails shorter than the vector width fall through to the scalar
//!   per-lane helpers.

#![allow(unsafe_op_in_unsafe_fn)]
// Index-based loops mirror the lane/score indexing of the scalar
// reference one-for-one (what makes the byte-identity review tractable),
// and the widest kernel shells pass the full reference-distribution
// context through flat argument lists by design.
#![allow(clippy::needless_range_loop, clippy::too_many_arguments)]

use core::arch::x86_64::*;

use super::scalar;

/// Minimal f64 SIMD abstraction: just the correctly-rounded element-wise
/// ops the kernels need, no horizontal reductions (the byte-identity
/// contract forbids them).
pub(crate) trait Simd: Copy {
    const LANES: usize;
    type V: Copy;
    unsafe fn splat(x: f64) -> Self::V;
    unsafe fn zero() -> Self::V;
    unsafe fn load(p: *const f64) -> Self::V;
    unsafe fn store(p: *mut f64, v: Self::V);
    unsafe fn add(a: Self::V, b: Self::V) -> Self::V;
    unsafe fn sub(a: Self::V, b: Self::V) -> Self::V;
    unsafe fn mul(a: Self::V, b: Self::V) -> Self::V;
    unsafe fn div(a: Self::V, b: Self::V) -> Self::V;
    unsafe fn min(a: Self::V, b: Self::V) -> Self::V;
    unsafe fn abs(a: Self::V) -> Self::V;
    unsafe fn sqrt(a: Self::V) -> Self::V;
    /// Packs `LANES` consecutive `u64`s, each converted with scalar `as
    /// f64` (correctly rounded for the full `u64` range).
    unsafe fn from_u64(p: *const u64) -> Self::V;
    /// All-ones lane mask where the corresponding `u64` is zero.
    unsafe fn mask_zero_u64(p: *const u64) -> Self::V;
    /// `mask ? a : b` per lane (bitwise blend; SSE2-compatible).
    unsafe fn select(mask: Self::V, a: Self::V, b: Self::V) -> Self::V;
    /// Scalar `f64::ln` applied to every lane.
    unsafe fn ln_lanes(v: Self::V) -> Self::V;
}

const ABS_MASK: u64 = 0x7fff_ffff_ffff_ffff;
const ALL_ONES: u64 = u64::MAX;

#[derive(Clone, Copy)]
pub(crate) struct Sse2;

impl Simd for Sse2 {
    const LANES: usize = 2;
    type V = __m128d;

    #[inline(always)]
    unsafe fn splat(x: f64) -> __m128d {
        _mm_set1_pd(x)
    }
    #[inline(always)]
    unsafe fn zero() -> __m128d {
        _mm_setzero_pd()
    }
    #[inline(always)]
    unsafe fn load(p: *const f64) -> __m128d {
        _mm_loadu_pd(p)
    }
    #[inline(always)]
    unsafe fn store(p: *mut f64, v: __m128d) {
        _mm_storeu_pd(p, v)
    }
    #[inline(always)]
    unsafe fn add(a: __m128d, b: __m128d) -> __m128d {
        _mm_add_pd(a, b)
    }
    #[inline(always)]
    unsafe fn sub(a: __m128d, b: __m128d) -> __m128d {
        _mm_sub_pd(a, b)
    }
    #[inline(always)]
    unsafe fn mul(a: __m128d, b: __m128d) -> __m128d {
        _mm_mul_pd(a, b)
    }
    #[inline(always)]
    unsafe fn div(a: __m128d, b: __m128d) -> __m128d {
        _mm_div_pd(a, b)
    }
    #[inline(always)]
    unsafe fn min(a: __m128d, b: __m128d) -> __m128d {
        _mm_min_pd(a, b)
    }
    #[inline(always)]
    unsafe fn abs(a: __m128d) -> __m128d {
        _mm_and_pd(a, _mm_set1_pd(f64::from_bits(ABS_MASK)))
    }
    #[inline(always)]
    unsafe fn sqrt(a: __m128d) -> __m128d {
        _mm_sqrt_pd(a)
    }
    #[inline(always)]
    unsafe fn from_u64(p: *const u64) -> __m128d {
        _mm_set_pd(*p.add(1) as f64, *p as f64)
    }
    #[inline(always)]
    unsafe fn mask_zero_u64(p: *const u64) -> __m128d {
        let m0 = if *p == 0 { ALL_ONES } else { 0 };
        let m1 = if *p.add(1) == 0 { ALL_ONES } else { 0 };
        _mm_castsi128_pd(_mm_set_epi64x(m1 as i64, m0 as i64))
    }
    #[inline(always)]
    unsafe fn select(mask: __m128d, a: __m128d, b: __m128d) -> __m128d {
        _mm_or_pd(_mm_and_pd(mask, a), _mm_andnot_pd(mask, b))
    }
    #[inline(always)]
    unsafe fn ln_lanes(v: __m128d) -> __m128d {
        let mut tmp = [0.0f64; 2];
        _mm_storeu_pd(tmp.as_mut_ptr(), v);
        for t in &mut tmp {
            *t = t.ln();
        }
        _mm_loadu_pd(tmp.as_ptr())
    }
}

#[derive(Clone, Copy)]
pub(crate) struct Avx2;

impl Simd for Avx2 {
    const LANES: usize = 4;
    type V = __m256d;

    #[inline(always)]
    unsafe fn splat(x: f64) -> __m256d {
        _mm256_set1_pd(x)
    }
    #[inline(always)]
    unsafe fn zero() -> __m256d {
        _mm256_setzero_pd()
    }
    #[inline(always)]
    unsafe fn load(p: *const f64) -> __m256d {
        _mm256_loadu_pd(p)
    }
    #[inline(always)]
    unsafe fn store(p: *mut f64, v: __m256d) {
        _mm256_storeu_pd(p, v)
    }
    #[inline(always)]
    unsafe fn add(a: __m256d, b: __m256d) -> __m256d {
        _mm256_add_pd(a, b)
    }
    #[inline(always)]
    unsafe fn sub(a: __m256d, b: __m256d) -> __m256d {
        _mm256_sub_pd(a, b)
    }
    #[inline(always)]
    unsafe fn mul(a: __m256d, b: __m256d) -> __m256d {
        _mm256_mul_pd(a, b)
    }
    #[inline(always)]
    unsafe fn div(a: __m256d, b: __m256d) -> __m256d {
        _mm256_div_pd(a, b)
    }
    #[inline(always)]
    unsafe fn min(a: __m256d, b: __m256d) -> __m256d {
        _mm256_min_pd(a, b)
    }
    #[inline(always)]
    unsafe fn abs(a: __m256d) -> __m256d {
        _mm256_and_pd(a, _mm256_set1_pd(f64::from_bits(ABS_MASK)))
    }
    #[inline(always)]
    unsafe fn sqrt(a: __m256d) -> __m256d {
        _mm256_sqrt_pd(a)
    }
    #[inline(always)]
    unsafe fn from_u64(p: *const u64) -> __m256d {
        _mm256_set_pd(
            *p.add(3) as f64,
            *p.add(2) as f64,
            *p.add(1) as f64,
            *p as f64,
        )
    }
    #[inline(always)]
    unsafe fn mask_zero_u64(p: *const u64) -> __m256d {
        let m = |k: usize| if *p.add(k) == 0 { ALL_ONES } else { 0 } as i64;
        _mm256_castsi256_pd(_mm256_set_epi64x(m(3), m(2), m(1), m(0)))
    }
    #[inline(always)]
    unsafe fn select(mask: __m256d, a: __m256d, b: __m256d) -> __m256d {
        _mm256_blendv_pd(b, a, mask)
    }
    #[inline(always)]
    unsafe fn ln_lanes(v: __m256d) -> __m256d {
        let mut tmp = [0.0f64; 4];
        _mm256_storeu_pd(tmp.as_mut_ptr(), v);
        for t in &mut tmp {
            *t = t.ln();
        }
        _mm256_loadu_pd(tmp.as_ptr())
    }
}

#[inline(always)]
unsafe fn cdf_rows_v<S: Simd>(
    counts: &[u64],
    totals: &[u64],
    lanes: usize,
    scale: usize,
    out: &mut [f64],
) {
    let uv = S::splat(1.0 / scale as f64);
    let mut i = 0;
    while i + S::LANES <= lanes {
        let inv = S::from_u64(totals.as_ptr().add(i));
        let empty = S::mask_zero_u64(totals.as_ptr().add(i));
        let mut acc = S::zero();
        for j in 0..scale {
            let c = S::from_u64(counts.as_ptr().add(j * lanes + i));
            let step = S::select(empty, uv, S::div(c, inv));
            acc = S::add(acc, step);
            S::store(out.as_mut_ptr().add(j * lanes + i), acc);
        }
        i += S::LANES;
    }
    for t in i..lanes {
        scalar::cdf_lane(counts, totals, lanes, scale, t, out);
    }
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
unsafe fn tvd_rows_v<S: Simd>(
    counts: &[u64],
    totals: &[u64],
    lanes: usize,
    scale: usize,
    ref_counts: &[u64],
    ref_total: u64,
    out: &mut [f64],
) {
    let m = scale as f64;
    let uv = S::splat(1.0 / m);
    let half = S::splat(0.5);
    let mut i = 0;
    while i + S::LANES <= lanes {
        let inv = S::from_u64(totals.as_ptr().add(i));
        let empty = S::mask_zero_u64(totals.as_ptr().add(i));
        let mut acc = S::zero();
        for j in 0..scale {
            let q = S::splat(scalar::prob(ref_counts[j], ref_total, m));
            let c = S::from_u64(counts.as_ptr().add(j * lanes + i));
            let p = S::select(empty, uv, S::div(c, inv));
            acc = S::add(acc, S::abs(S::sub(p, q)));
        }
        S::store(out.as_mut_ptr().add(i), S::mul(half, acc));
        i += S::LANES;
    }
    for t in i..lanes {
        out[t] = scalar::tvd_lane(counts, totals, lanes, scale, ref_counts, ref_total, t);
    }
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
unsafe fn jeffreys_rows_v<S: Simd>(
    counts: &[u64],
    totals: &[u64],
    lanes: usize,
    scale: usize,
    ref_counts: &[u64],
    ref_total: u64,
    eps: f64,
    out: &mut [f64],
) {
    let m = scale as f64;
    let norm = 1.0 + m * eps;
    let uv = S::splat(1.0 / m);
    let epsv = S::splat(eps);
    let normv = S::splat(norm);
    let mut i = 0;
    while i + S::LANES <= lanes {
        let inv = S::from_u64(totals.as_ptr().add(i));
        let empty = S::mask_zero_u64(totals.as_ptr().add(i));
        let mut ab = S::zero();
        let mut ba = S::zero();
        for j in 0..scale {
            let q = (scalar::prob(ref_counts[j], ref_total, m) + eps) / norm;
            let qv = S::splat(q);
            let c = S::from_u64(counts.as_ptr().add(j * lanes + i));
            let p0 = S::select(empty, uv, S::div(c, inv));
            let p = S::div(S::add(p0, epsv), normv);
            ab = S::add(ab, S::mul(p, S::ln_lanes(S::div(p, qv))));
            ba = S::add(ba, S::mul(qv, S::ln_lanes(S::div(qv, p))));
        }
        S::store(out.as_mut_ptr().add(i), S::add(ab, ba));
        i += S::LANES;
    }
    for t in i..lanes {
        out[t] = scalar::jeffreys_lane(counts, totals, lanes, scale, ref_counts, ref_total, eps, t);
    }
}

#[inline(always)]
unsafe fn mean_sd_rows_v<S: Simd>(
    counts: &[u64],
    totals: &[u64],
    lanes: usize,
    scale: usize,
    out_mean: &mut [f64],
    out_sd: &mut [f64],
) {
    let mut i = 0;
    while i + S::LANES <= lanes {
        let total = S::from_u64(totals.as_ptr().add(i));
        let mut sum = S::zero();
        for j in 0..scale {
            let score = S::splat(j as f64 + 1.0);
            let c = S::from_u64(counts.as_ptr().add(j * lanes + i));
            sum = S::add(sum, S::mul(score, c));
        }
        let mean = S::div(sum, total);
        let mut ss = S::zero();
        for j in 0..scale {
            let d = S::sub(S::splat(j as f64 + 1.0), mean);
            let c = S::from_u64(counts.as_ptr().add(j * lanes + i));
            ss = S::add(ss, S::mul(S::mul(d, d), c));
        }
        S::store(out_mean.as_mut_ptr().add(i), mean);
        S::store(out_sd.as_mut_ptr().add(i), S::sqrt(S::div(ss, total)));
        i += S::LANES;
    }
    for t in i..lanes {
        let (mean, sd) = scalar::mean_sd_lane(counts, totals, lanes, scale, t);
        out_mean[t] = mean;
        out_sd[t] = sd;
    }
}

#[inline(always)]
unsafe fn l1_norm_rows_v<S: Simd>(
    vals: &[f64],
    lanes: usize,
    scale: usize,
    reference: &[f64],
    out: &mut [f64],
) {
    let invd = S::splat(scale as f64 - 1.0);
    let mut i = 0;
    while i + S::LANES <= lanes {
        let mut acc = S::zero();
        for j in 0..scale {
            let v = S::load(vals.as_ptr().add(j * lanes + i));
            acc = S::add(acc, S::abs(S::sub(v, S::splat(reference[j]))));
        }
        S::store(out.as_mut_ptr().add(i), S::div(acc, invd));
        i += S::LANES;
    }
    for t in i..lanes {
        out[t] = scalar::l1_norm_lane(vals, lanes, scale, reference, t);
    }
}

#[inline(always)]
unsafe fn cost_matrix_v<S: Simd>(
    a: &[f64],
    a_lanes: usize,
    b: &[f64],
    b_lanes: usize,
    scale: usize,
    out: &mut [f64],
) {
    let invd = S::splat(scale as f64 - 1.0);
    for i in 0..a_lanes {
        let mut j = 0;
        while j + S::LANES <= b_lanes {
            let mut acc = S::zero();
            for k in 0..scale {
                let av = S::splat(a[k * a_lanes + i]);
                let bv = S::load(b.as_ptr().add(k * b_lanes + j));
                acc = S::add(acc, S::abs(S::sub(av, bv)));
            }
            S::store(out.as_mut_ptr().add(i * b_lanes + j), S::div(acc, invd));
            j += S::LANES;
        }
        for t in j..b_lanes {
            out[i * b_lanes + t] = scalar::cost_cell(a, a_lanes, b, b_lanes, scale, i, t);
        }
    }
}

#[inline(always)]
unsafe fn col_mins_v<S: Simd>(mat: &[f64], rows: usize, cols: usize, out: &mut [f64]) {
    let mut j = 0;
    while j + S::LANES <= cols {
        let mut acc = S::splat(f64::INFINITY);
        for i in 0..rows {
            acc = S::min(acc, S::load(mat.as_ptr().add(i * cols + j)));
        }
        S::store(out.as_mut_ptr().add(j), acc);
        j += S::LANES;
    }
    for t in j..cols {
        out[t] = scalar::col_min(mat, rows, cols, t);
    }
}

// ------------------------------------------------------------- set kernels
//
// Integer word-wise set algebra for the compressed posting index. These
// are exact bitwise ops, so SIMD lanes are trivially byte-identical to
// the scalar reference — no rounding contract to uphold. The f64 `Simd`
// trait above does not apply; each kernel is a standalone
// `#[target_feature]` shell over integer intrinsics.

#[target_feature(enable = "sse2")]
pub(crate) unsafe fn and_words_sse2(acc: &mut [u64], other: &[u64]) {
    let n = acc.len().min(other.len());
    let mut i = 0;
    while i + 2 <= n {
        let a = _mm_loadu_si128(acc.as_ptr().add(i).cast());
        let b = _mm_loadu_si128(other.as_ptr().add(i).cast());
        _mm_storeu_si128(acc.as_mut_ptr().add(i).cast(), _mm_and_si128(a, b));
        i += 2;
    }
    while i < n {
        acc[i] &= other[i];
        i += 1;
    }
}

#[target_feature(enable = "avx2")]
pub(crate) unsafe fn and_words_avx2(acc: &mut [u64], other: &[u64]) {
    let n = acc.len().min(other.len());
    let mut i = 0;
    while i + 4 <= n {
        let a = _mm256_loadu_si256(acc.as_ptr().add(i).cast());
        let b = _mm256_loadu_si256(other.as_ptr().add(i).cast());
        _mm256_storeu_si256(acc.as_mut_ptr().add(i).cast(), _mm256_and_si256(a, b));
        i += 4;
    }
    while i < n {
        acc[i] &= other[i];
        i += 1;
    }
}

#[target_feature(enable = "sse2")]
pub(crate) unsafe fn andnot_words_sse2(acc: &mut [u64], other: &[u64]) {
    let n = acc.len().min(other.len());
    let mut i = 0;
    while i + 2 <= n {
        let a = _mm_loadu_si128(acc.as_ptr().add(i).cast());
        let b = _mm_loadu_si128(other.as_ptr().add(i).cast());
        // `_mm_andnot_si128(b, a)` computes `!b & a`.
        _mm_storeu_si128(acc.as_mut_ptr().add(i).cast(), _mm_andnot_si128(b, a));
        i += 2;
    }
    while i < n {
        acc[i] &= !other[i];
        i += 1;
    }
}

#[target_feature(enable = "avx2")]
pub(crate) unsafe fn andnot_words_avx2(acc: &mut [u64], other: &[u64]) {
    let n = acc.len().min(other.len());
    let mut i = 0;
    while i + 4 <= n {
        let a = _mm256_loadu_si256(acc.as_ptr().add(i).cast());
        let b = _mm256_loadu_si256(other.as_ptr().add(i).cast());
        _mm256_storeu_si256(acc.as_mut_ptr().add(i).cast(), _mm256_andnot_si256(b, a));
        i += 4;
    }
    while i < n {
        acc[i] &= !other[i];
        i += 1;
    }
}

/// AVX2 nibble-LUT popcount (Muła): split each byte into nibbles, look up
/// their population in a shuffled 16-entry table, and accumulate with
/// `sad_epu8` against zero. Integer-exact, so identical to the scalar
/// `count_ones` sum.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn popcount_words_avx2(words: &[u64]) -> u64 {
    let lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, //
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
    );
    let low_mask = _mm256_set1_epi8(0x0f);
    let mut acc = _mm256_setzero_si256();
    let mut i = 0;
    while i + 4 <= words.len() {
        let v = _mm256_loadu_si256(words.as_ptr().add(i).cast());
        let lo = _mm256_and_si256(v, low_mask);
        let hi = _mm256_and_si256(_mm256_srli_epi32::<4>(v), low_mask);
        let cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
        acc = _mm256_add_epi64(acc, _mm256_sad_epu8(cnt, _mm256_setzero_si256()));
        i += 4;
    }
    let mut lanes = [0u64; 4];
    _mm256_storeu_si256(lanes.as_mut_ptr().cast(), acc);
    let mut n = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    while i < words.len() {
        n += u64::from(words[i].count_ones());
        i += 1;
    }
    n
}

/// Generates the `#[target_feature]` entry points that instantiate one
/// generic kernel body at both vector widths.
macro_rules! shells {
    ($($sse2:ident / $avx2:ident => $body:ident ( $($arg:ident : $ty:ty),* $(,)? );)*) => {
        $(
            #[target_feature(enable = "sse2")]
            pub(crate) unsafe fn $sse2($($arg: $ty),*) {
                $body::<Sse2>($($arg),*)
            }
            #[target_feature(enable = "avx2")]
            pub(crate) unsafe fn $avx2($($arg: $ty),*) {
                $body::<Avx2>($($arg),*)
            }
        )*
    };
}

shells! {
    cdf_rows_sse2 / cdf_rows_avx2 => cdf_rows_v(
        counts: &[u64], totals: &[u64], lanes: usize, scale: usize, out: &mut [f64],
    );
    tvd_rows_sse2 / tvd_rows_avx2 => tvd_rows_v(
        counts: &[u64], totals: &[u64], lanes: usize, scale: usize,
        ref_counts: &[u64], ref_total: u64, out: &mut [f64],
    );
    jeffreys_rows_sse2 / jeffreys_rows_avx2 => jeffreys_rows_v(
        counts: &[u64], totals: &[u64], lanes: usize, scale: usize,
        ref_counts: &[u64], ref_total: u64, eps: f64, out: &mut [f64],
    );
    mean_sd_rows_sse2 / mean_sd_rows_avx2 => mean_sd_rows_v(
        counts: &[u64], totals: &[u64], lanes: usize, scale: usize,
        out_mean: &mut [f64], out_sd: &mut [f64],
    );
    l1_norm_rows_sse2 / l1_norm_rows_avx2 => l1_norm_rows_v(
        vals: &[f64], lanes: usize, scale: usize, reference: &[f64], out: &mut [f64],
    );
    cost_matrix_sse2 / cost_matrix_avx2 => cost_matrix_v(
        a: &[f64], a_lanes: usize, b: &[f64], b_lanes: usize, scale: usize, out: &mut [f64],
    );
    col_mins_sse2 / col_mins_avx2 => col_mins_v(
        mat: &[f64], rows: usize, cols: usize, out: &mut [f64],
    );
}
