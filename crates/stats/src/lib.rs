//! # subdex-stats
//!
//! Numeric substrate for the SubDEx subjective-data-exploration framework.
//!
//! This crate is self-contained (no dependency on the storage or exploration
//! layers) and provides:
//!
//! * [`RatingDistribution`] — histograms over a discrete ordinal rating scale
//!   (Definition 1 of the paper), with means, dispersion, and merging.
//! * Distances between distributions: [`distance::total_variation`],
//!   [`distance::kl_divergence`], [`distance::emd_1d`] (the closed-form
//!   Earth Mover's Distance on an ordinal scale) and a general exact EMD
//!   solver over weighted point sets ([`emd::emd_transport`]) built on a
//!   min-cost-flow transportation solver.
//! * [`bounds::HoeffdingSerfling`] — worst-case confidence intervals for
//!   means estimated by sampling *without replacement*, as used by the
//!   paper's confidence-interval pruning (via SeeDB \[54\] and Serfling
//!   \[48\]).
//! * [`moments::RunningMoments`] — numerically stable streaming moments.
//! * [`special`] — ln-gamma, the regularized incomplete beta function, and
//!   the F distribution CDF, supporting the ANOVA significance tests in the
//!   user-study harness.
//! * [`anova`] — one-way ANOVA over treatment groups.
//! * [`normalize`] — score normalizers that bring the paper's four
//!   interestingness criteria onto a common `[0, 1]` scale (following
//!   Somech et al. \[51\]).
//! * [`kernels`] — structure-of-arrays batch kernels for the distributional
//!   hot path, with runtime SIMD dispatch (scalar/SSE2/AVX2) and a
//!   byte-identity contract across paths.

pub mod anova;
pub mod bounds;
pub mod distance;
pub mod distribution;
pub mod emd;
pub mod kernels;
pub mod moments;
pub mod normalize;
pub mod special;

pub use bounds::{ConfidenceInterval, HoeffdingSerfling};
pub use distribution::RatingDistribution;
pub use moments::RunningMoments;
