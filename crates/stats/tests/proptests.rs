//! Property-based tests for the numeric substrate.

use proptest::prelude::*;
use subdex_stats::distance::{
    emd_1d, emd_1d_from_cdfs, emd_1d_normalized, kl_divergence, total_variation,
};
use subdex_stats::emd::{emd_transport, emd_transport_general, emd_transport_matrix};
use subdex_stats::moments::RunningMoments;
use subdex_stats::normalize::{MinMaxNormalizer, Normalizer, ZLogisticNormalizer};
use subdex_stats::special::{f_cdf, regularized_incomplete_beta};
use subdex_stats::{HoeffdingSerfling, RatingDistribution};

fn dist_strategy() -> impl Strategy<Value = RatingDistribution> {
    prop::collection::vec(0u64..50, 5).prop_map(RatingDistribution::from_counts)
}

fn nonempty_dist() -> impl Strategy<Value = RatingDistribution> {
    dist_strategy().prop_filter("non-empty", |d| !d.is_empty())
}

proptest! {
    #[test]
    fn tvd_is_a_bounded_metric(a in dist_strategy(), b in dist_strategy(), c in dist_strategy()) {
        let ab = total_variation(&a, &b);
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert!((ab - total_variation(&b, &a)).abs() < 1e-12);
        // Triangle inequality.
        let ac = total_variation(&a, &c);
        let cb = total_variation(&c, &b);
        prop_assert!(ab <= ac + cb + 1e-12);
    }

    #[test]
    fn tvd_zero_iff_same_probabilities(a in nonempty_dist()) {
        prop_assert!(total_variation(&a, &a) < 1e-12);
    }

    #[test]
    fn kl_nonnegative(a in nonempty_dist(), b in nonempty_dist()) {
        prop_assert!(kl_divergence(&a, &b, 1e-4) >= -1e-12);
    }

    #[test]
    fn emd_1d_bounded_and_symmetric(a in dist_strategy(), b in dist_strategy()) {
        let d = emd_1d(&a, &b);
        prop_assert!((0.0..=4.0 + 1e-12).contains(&d));
        prop_assert!((d - emd_1d(&b, &a)).abs() < 1e-12);
        let dn = emd_1d_normalized(&a, &b);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&dn));
    }

    #[test]
    fn emd_transport_matches_closed_form_on_line(
        a in nonempty_dist(),
        b in nonempty_dist(),
    ) {
        let closed = emd_1d(&a, &b);
        let general = emd_transport(&a.probabilities(), &b.probabilities(), |i, j| {
            (i as f64 - j as f64).abs()
        });
        prop_assert!((closed - general).abs() < 1e-7, "closed {closed} vs general {general}");
    }

    #[test]
    fn emd_transport_triangle_inequality(
        a in nonempty_dist(),
        b in nonempty_dist(),
        c in nonempty_dist(),
    ) {
        let d = |x: &RatingDistribution, y: &RatingDistribution| {
            emd_transport(&x.probabilities(), &y.probabilities(), |i, j| {
                (i as f64 - j as f64).abs()
            })
        };
        prop_assert!(d(&a, &b) <= d(&a, &c) + d(&c, &b) + 1e-7);
    }

    #[test]
    fn hoeffding_serfling_monotone_in_samples(
        n in 10u64..100_000,
        delta in 0.001f64..0.5,
    ) {
        let hs = HoeffdingSerfling::new(n, delta);
        let mut prev = f64::INFINITY;
        for s in [1u64, 2, 4, 8, 16].into_iter().filter(|&s| s < n) {
            let w = hs.half_width(s);
            prop_assert!(w <= prev + 1e-12, "widths must shrink");
            prop_assert!(w >= 0.0);
            prev = w;
        }
        prop_assert_eq!(hs.half_width(n), 0.0);
    }

    #[test]
    fn moments_merge_equals_sequential(xs in prop::collection::vec(-100.0f64..100.0, 1..60), split in 0usize..60) {
        let split = split.min(xs.len());
        let mut whole = RunningMoments::new();
        for &x in &xs { whole.push(x); }
        let mut a = RunningMoments::new();
        let mut b = RunningMoments::new();
        for &x in &xs[..split] { a.push(x); }
        for &x in &xs[split..] { b.push(x); }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        let (ma, mw) = (a.mean().unwrap(), whole.mean().unwrap());
        prop_assert!((ma - mw).abs() < 1e-9);
        let (va, vw) = (a.variance().unwrap(), whole.variance().unwrap());
        prop_assert!((va - vw).abs() < 1e-7);
    }

    #[test]
    fn normalizers_stay_in_unit_interval(
        observations in prop::collection::vec(-1e6f64..1e6, 0..50),
        probe in -1e6f64..1e6,
    ) {
        let mut z = ZLogisticNormalizer::new();
        let mut m = MinMaxNormalizer::new();
        for &x in &observations {
            z.observe(x);
            m.observe(x);
        }
        for v in [z.normalize(probe), m.normalize(probe)] {
            prop_assert!((0.0..=1.0).contains(&v), "out of range: {v}");
        }
    }

    #[test]
    fn zlogistic_is_monotone(
        observations in prop::collection::vec(-100.0f64..100.0, 3..30),
        x in -100.0f64..100.0,
        dx in 0.001f64..10.0,
    ) {
        let mut z = ZLogisticNormalizer::new();
        for &o in &observations { z.observe(o); }
        prop_assert!(z.normalize(x) <= z.normalize(x + dx) + 1e-12);
    }

    #[test]
    fn incomplete_beta_monotone_and_bounded(
        a in 0.5f64..20.0,
        b in 0.5f64..20.0,
        x1 in 0.0f64..1.0,
        x2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        let vlo = regularized_incomplete_beta(a, b, lo);
        let vhi = regularized_incomplete_beta(a, b, hi);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&vlo));
        prop_assert!(vlo <= vhi + 1e-9);
    }

    #[test]
    fn f_cdf_monotone(d1 in 1.0f64..30.0, d2 in 1.0f64..30.0, f in 0.0f64..20.0, df in 0.01f64..5.0) {
        let lo = f_cdf(f, d1, d2);
        let hi = f_cdf(f + df, d1, d2);
        prop_assert!((0.0..=1.0).contains(&lo));
        prop_assert!(lo <= hi + 1e-9);
    }

    #[test]
    fn distribution_mean_within_scale(d in nonempty_dist()) {
        let m = d.mean().unwrap();
        prop_assert!((1.0..=5.0).contains(&m));
        let sd = d.std_dev().unwrap();
        prop_assert!((0.0..=2.0 + 1e-9).contains(&sd), "sd of 1..5 scale is ≤ 2");
    }

    #[test]
    fn cdf_into_is_bit_identical_to_cdf(d in dist_strategy()) {
        // Pre-populated buffer must be cleared, not appended to.
        let mut buf = vec![42.0; 3];
        d.cdf_into(&mut buf);
        let owned = d.cdf();
        prop_assert_eq!(buf.len(), owned.len());
        for (a, b) in buf.iter().zip(&owned) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "cdf_into must match cdf bitwise");
        }
    }

    #[test]
    fn emd_1d_from_cdfs_matches_emd_1d(a in dist_strategy(), b in dist_strategy()) {
        let (ca, cb) = (a.cdf(), b.cdf());
        let batched = emd_1d_from_cdfs(&ca, &cb);
        prop_assert_eq!(batched.to_bits(), emd_1d(&a, &b).to_bits());
    }

    #[test]
    fn single_subgroup_fast_path_matches_general_solver(
        solo in 0.1f64..10.0,
        other in prop::collection::vec(0.01f64..5.0, 1..8),
        costs in prop::collection::vec(0.0f64..3.0, 8),
        flip in 0usize..2,
    ) {
        // The closed-form path (one source or one sink) must agree with the
        // augmenting-path solver on the same instance.
        let costs = &costs[..other.len()];
        let (s, t): (&[f64], &[f64]) = if flip == 1 {
            (&other, std::slice::from_ref(&solo))
        } else {
            (std::slice::from_ref(&solo), &other)
        };
        let fast = emd_transport_matrix(s, t, costs);
        let general = emd_transport_general(s, t, costs);
        prop_assert!(
            (fast - general).abs() < 1e-9,
            "fast {fast} vs general {general}"
        );
    }

    #[test]
    fn matrix_api_matches_closure_api(
        s in prop::collection::vec(0.01f64..5.0, 2..6),
        t in prop::collection::vec(0.01f64..5.0, 2..6),
    ) {
        let costs: Vec<f64> = (0..s.len())
            .flat_map(|i| (0..t.len()).map(move |j| (i as f64 - j as f64).abs()))
            .collect();
        let via_matrix = emd_transport_matrix(&s, &t, &costs);
        let via_closure = emd_transport(&s, &t, |i, j| (i as f64 - j as f64).abs());
        prop_assert!((via_matrix - via_closure).abs() < 1e-9);
    }

    #[test]
    fn cdf_is_proper(d in dist_strategy()) {
        let cdf = d.cdf();
        prop_assert_eq!(cdf.len(), 5);
        for w in cdf.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
        prop_assert!((cdf[4] - 1.0).abs() < 1e-9);
    }
}
