//! Cross-checks of the numeric substrate against independently computed
//! reference values (computed independently with Python's math.lgamma and
//! a separately written incomplete-beta implementation), so a regression in the
//! special-function plumbing cannot hide behind property tests.

use subdex_stats::anova::one_way_anova;
use subdex_stats::special::{f_cdf, ln_gamma, regularized_incomplete_beta};

/// Reference: scipy.special.gammaln.
#[test]
fn ln_gamma_reference_values() {
    let cases = [
        (0.1, 2.252712651734206),
        (0.5, 0.5723649429247001),
        (1.5, -0.12078223763524522),
        (3.7, 1.4280723266653883),
        (10.0, 12.801827480081469),
        (100.0, 359.1342053695754),
    ];
    for (x, expect) in cases {
        let got = ln_gamma(x);
        assert!(
            (got - expect).abs() < 1e-9,
            "ln_gamma({x}) = {got}, expected {expect}"
        );
    }
}

/// Reference: scipy.special.betainc.
#[test]
fn incomplete_beta_reference_values() {
    let cases = [
        (2.0, 3.0, 0.4, 0.5248),
        (0.5, 0.5, 0.3, 0.36901011956554497),
        (5.0, 1.0, 0.9, 0.5904900000000001),
        (10.0, 10.0, 0.5, 0.5),
        (1.0, 7.0, 0.2, 0.7902848),
    ];
    for (a, b, x, expect) in cases {
        let got = regularized_incomplete_beta(a, b, x);
        assert!(
            (got - expect).abs() < 1e-7,
            "I_{x}({a},{b}) = {got}, expected {expect}"
        );
    }
}

/// Reference: scipy.stats.f.cdf.
#[test]
fn f_cdf_reference_values() {
    let cases = [
        (1.0, 1.0, 1.0, 0.5),
        (2.5, 3.0, 12.0, 0.8908452876049938),
        (4.26, 2.0, 10.0, 0.9541018597937984),
        (0.5, 5.0, 5.0, 0.2325113191303782),
    ];
    for (f, d1, d2, expect) in cases {
        let got = f_cdf(f, d1, d2);
        assert!(
            (got - expect).abs() < 1e-6,
            "F({f}; {d1},{d2}) = {got}, expected {expect}"
        );
    }
}

/// Reference: scipy.stats.f_oneway on the same data.
#[test]
fn anova_reference() {
    let a = [25.0, 30.0, 28.0, 36.0, 29.0];
    let b = [45.0, 55.0, 29.0, 56.0, 40.0];
    let c = [30.0, 29.0, 33.0, 37.0, 27.0];
    let r = one_way_anova(&[&a, &b, &c]).unwrap();
    // Independently computed: F = 6.84968, p = 0.010365.
    assert!((r.f - 6.84968152866242).abs() < 1e-6, "F = {}", r.f);
    assert!(
        (r.p_value - 0.010364618417767923).abs() < 1e-6,
        "p = {}",
        r.p_value
    );
    assert!(r.significant_at(0.05));
}
