//! Byte-identity proptests for the batch-kernel layer.
//!
//! Two contracts are pinned here, both with `to_bits` equality (never an
//! epsilon):
//!
//! 1. **Path equivalence** — every SIMD dispatch path the host supports
//!    produces bit-identical output to [`KernelPath::Scalar`], across batch
//!    shapes that exercise empty batches, single-lane batches, and
//!    non-multiple-of-width tails for both the 2-lane (SSE2) and 4-lane
//!    (AVX2) widths.
//! 2. **Legacy equivalence** — the scalar kernels produce bit-identical
//!    output to the pre-kernel per-distribution code (`cdf_into`,
//!    `total_variation`, `kl_divergence`, `mean`/`std_dev`,
//!    `emd_1d_normalized_from_cdfs`), so kernelized callers keep emitting
//!    the bytes they always emitted.

use proptest::prelude::*;
use proptest::strategy::Just;
use subdex_stats::distance::{emd_1d_normalized_from_cdfs, kl_divergence, total_variation};
use subdex_stats::kernels::{self, BatchScratch, KernelPath};
use subdex_stats::RatingDistribution;

/// Batch shapes covering the interesting sizes: zero lanes, one lane, the
/// exact SSE2/AVX2 widths, and tails that are non-multiples of both widths.
const LANE_SIZES: [usize; 8] = [0, 1, 2, 3, 4, 5, 9, 17];

fn batch(max_scale: usize) -> impl Strategy<Value = (usize, Vec<Vec<u64>>)> {
    (1usize..=max_scale, 0usize..LANE_SIZES.len()).prop_flat_map(|(scale, size_ix)| {
        let lanes = LANE_SIZES[size_ix];
        (
            Just(scale),
            prop::collection::vec(
                (prop::bool::ANY, prop::collection::vec(0u64..1000, scale)).prop_map(
                    |(empty, row)| {
                        if empty {
                            vec![0; row.len()]
                        } else {
                            row
                        }
                    },
                ),
                lanes,
            ),
        )
    })
}

fn reference(scale: usize) -> impl Strategy<Value = Vec<u64>> {
    (prop::bool::ANY, prop::collection::vec(0u64..1000, scale)).prop_map(|(empty, row)| {
        if empty {
            vec![0; row.len()]
        } else {
            row
        }
    })
}

fn stage(scale: usize, rows: &[Vec<u64>]) -> BatchScratch {
    let mut b = BatchScratch::new();
    b.stage(scale, rows.iter().map(|r| r.as_slice()));
    b
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Every non-scalar path the host can run.
fn simd_paths() -> Vec<KernelPath> {
    KernelPath::available()
        .into_iter()
        .filter(|&p| p != KernelPath::Scalar)
        .collect()
}

proptest! {
    #[test]
    fn cdf_rows_paths_match_scalar((scale, rows) in batch(7)) {
        let b = stage(scale, &rows);
        let mut want = Vec::new();
        kernels::cdf_rows(KernelPath::Scalar, &b, &mut want);
        for path in simd_paths() {
            let mut got = Vec::new();
            kernels::cdf_rows(path, &b, &mut got);
            prop_assert_eq!(bits(&got), bits(&want), "path {}", path);
        }
    }

    #[test]
    fn tvd_rows_paths_match_scalar((scale, rows) in batch(7), seed in 0u64..1000) {
        let b = stage(scale, &rows);
        let rc: Vec<u64> = (0..scale as u64).map(|j| (seed + j * 37) % 97).collect();
        let rt: u64 = rc.iter().sum();
        let mut want = Vec::new();
        kernels::tvd_rows(KernelPath::Scalar, &b, &rc, rt, &mut want);
        for path in simd_paths() {
            let mut got = Vec::new();
            kernels::tvd_rows(path, &b, &rc, rt, &mut got);
            prop_assert_eq!(bits(&got), bits(&want), "path {}", path);
        }
    }

    #[test]
    fn jeffreys_rows_paths_match_scalar((scale, rows) in batch(7), refc in (1usize..=7).prop_flat_map(reference)) {
        // Regenerate the reference at the batch's scale.
        let rc: Vec<u64> = (0..scale).map(|j| refc.get(j).copied().unwrap_or(3)).collect();
        let rt: u64 = rc.iter().sum();
        let b = stage(scale, &rows);
        let mut want = Vec::new();
        kernels::jeffreys_rows(KernelPath::Scalar, &b, &rc, rt, 1e-4, &mut want);
        for path in simd_paths() {
            let mut got = Vec::new();
            kernels::jeffreys_rows(path, &b, &rc, rt, 1e-4, &mut got);
            prop_assert_eq!(bits(&got), bits(&want), "path {}", path);
        }
    }

    #[test]
    fn mean_sd_rows_paths_match_scalar((scale, rows) in batch(7)) {
        let b = stage(scale, &rows);
        let (mut wm, mut ws) = (Vec::new(), Vec::new());
        kernels::mean_sd_rows(KernelPath::Scalar, &b, &mut wm, &mut ws);
        for path in simd_paths() {
            let (mut gm, mut gs) = (Vec::new(), Vec::new());
            kernels::mean_sd_rows(path, &b, &mut gm, &mut gs);
            prop_assert_eq!(bits(&gm), bits(&wm), "mean, path {}", path);
            prop_assert_eq!(bits(&gs), bits(&ws), "sd, path {}", path);
        }
    }

    #[test]
    fn l1_and_cost_and_colmin_paths_match_scalar(
        (scale, rows_a) in batch(7),
        rows_b in prop::collection::vec(prop::collection::vec(0u64..1000, 7), 0usize..9),
    ) {
        // Stage both sides as CDF batches (realistic input for these kernels).
        let a = stage(scale, &rows_a);
        let rows_b: Vec<Vec<u64>> = rows_b.into_iter().map(|mut r| { r.truncate(scale); r }).collect();
        let b = stage(scale, &rows_b);
        let (mut ca, mut cb) = (Vec::new(), Vec::new());
        kernels::cdf_rows(KernelPath::Scalar, &a, &mut ca);
        kernels::cdf_rows(KernelPath::Scalar, &b, &mut cb);
        let reference: Vec<f64> = (0..scale).map(|j| (j as f64 + 1.0) / scale as f64).collect();

        let mut want_l1 = Vec::new();
        kernels::l1_norm_rows(KernelPath::Scalar, &ca, a.lanes(), scale, &reference, &mut want_l1);
        let mut want_cost = Vec::new();
        kernels::cost_matrix(KernelPath::Scalar, &ca, a.lanes(), &cb, b.lanes(), scale, &mut want_cost);
        let mut want_mins = Vec::new();
        kernels::col_mins(KernelPath::Scalar, &want_cost, a.lanes(), b.lanes(), &mut want_mins);

        for path in simd_paths() {
            let mut got = Vec::new();
            kernels::l1_norm_rows(path, &ca, a.lanes(), scale, &reference, &mut got);
            prop_assert_eq!(bits(&got), bits(&want_l1), "l1, path {}", path);
            let mut got_cost = Vec::new();
            kernels::cost_matrix(path, &ca, a.lanes(), &cb, b.lanes(), scale, &mut got_cost);
            prop_assert_eq!(bits(&got_cost), bits(&want_cost), "cost, path {}", path);
            let mut got_mins = Vec::new();
            kernels::col_mins(path, &want_cost, a.lanes(), b.lanes(), &mut got_mins);
            prop_assert_eq!(bits(&got_mins), bits(&want_mins), "mins, path {}", path);
        }
    }

    #[test]
    fn hist_and_gather_paths_match_scalar(
        pairs in prop::collection::vec((0u32..64, 1u8..=5), 0usize..50),
        codes in prop::collection::vec(0u32..8, 64),
        idx in prop::collection::vec(0u32..64, 0usize..41),
    ) {
        let scale = 5usize;
        let rows: Vec<u32> = pairs.iter().map(|&(r, _)| r).collect();
        let scores: Vec<u8> = pairs.iter().map(|&(_, s)| s).collect();
        let src: Vec<u32> = (0..64u32).map(|i| i.wrapping_mul(2_654_435_761)).collect();

        let mut want_counts = vec![0u64; 8 * scale];
        kernels::hist_single(KernelPath::Scalar, &rows, &scores, &codes, scale, &mut want_counts);
        let mut want_gather = Vec::new();
        kernels::gather_u32(KernelPath::Scalar, &src, &idx, &mut want_gather);

        for path in simd_paths() {
            let mut got_counts = vec![0u64; 8 * scale];
            kernels::hist_single(path, &rows, &scores, &codes, scale, &mut got_counts);
            prop_assert_eq!(&got_counts, &want_counts, "hist, path {}", path);
            let mut got_gather = Vec::new();
            kernels::gather_u32(path, &src, &idx, &mut got_gather);
            prop_assert_eq!(&got_gather, &want_gather, "gather, path {}", path);
            prop_assert_eq!(got_gather.capacity(), idx.len(), "gather capacity, path {}", path);
        }
    }

    // ------------------------------------------------------------------
    // Scalar kernels vs the pre-kernel per-distribution code.
    // ------------------------------------------------------------------

    #[test]
    fn scalar_kernels_match_legacy_distribution_code((scale, rows) in batch(7), refc in (1usize..=7).prop_flat_map(reference)) {
        let rc: Vec<u64> = (0..scale).map(|j| refc.get(j).copied().unwrap_or(3)).collect();
        let rt: u64 = rc.iter().sum();
        let refd = RatingDistribution::from_counts(rc.clone());
        let b = stage(scale, &rows);

        let (mut cdfs, mut tvd, mut jef, mut mean, mut sd) =
            (Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new());
        kernels::cdf_rows(KernelPath::Scalar, &b, &mut cdfs);
        kernels::tvd_rows(KernelPath::Scalar, &b, &rc, rt, &mut tvd);
        kernels::jeffreys_rows(KernelPath::Scalar, &b, &rc, rt, 1e-4, &mut jef);
        kernels::mean_sd_rows(KernelPath::Scalar, &b, &mut mean, &mut sd);

        let mut legacy_cdf = Vec::new();
        let mut ref_cdf = Vec::new();
        refd.cdf_into(&mut ref_cdf);
        for (i, row) in rows.iter().enumerate() {
            let d = RatingDistribution::from_counts(row.clone());
            d.cdf_into(&mut legacy_cdf);
            for (j, &c) in legacy_cdf.iter().enumerate() {
                prop_assert_eq!(cdfs[j * b.lanes() + i].to_bits(), c.to_bits(), "cdf lane {}", i);
            }
            prop_assert_eq!(tvd[i].to_bits(), total_variation(&d, &refd).to_bits(), "tvd lane {}", i);
            let legacy_j = kl_divergence(&d, &refd, 1e-4) + kl_divergence(&refd, &d, 1e-4);
            prop_assert_eq!(jef[i].to_bits(), legacy_j.to_bits(), "jeffreys lane {}", i);
            match (d.mean(), d.std_dev()) {
                (Some(m), Some(s)) => {
                    prop_assert_eq!(mean[i].to_bits(), m.to_bits(), "mean lane {}", i);
                    prop_assert_eq!(sd[i].to_bits(), s.to_bits(), "sd lane {}", i);
                }
                _ => {
                    prop_assert!(mean[i].is_nan(), "empty lane {} mean should be NaN", i);
                    prop_assert!(sd[i].is_nan(), "empty lane {} sd should be NaN", i);
                }
            }
            // The batched L1/cost kernels must agree with the legacy
            // normalized-EMD-from-CDFs on every lane pair.
            let mut l1 = Vec::new();
            kernels::l1_norm_rows(KernelPath::Scalar, &cdfs, b.lanes(), scale, &ref_cdf, &mut l1);
            prop_assert_eq!(
                l1[i].to_bits(),
                emd_1d_normalized_from_cdfs(&legacy_cdf, &ref_cdf).to_bits(),
                "l1 lane {}", i
            );
        }
    }
}

/// Forced-unavailable paths must panic, not execute illegal instructions.
#[test]
fn unavailable_path_is_rejected() {
    for path in [KernelPath::Sse2, KernelPath::Avx2] {
        if path.is_available() {
            continue;
        }
        let result = std::panic::catch_unwind(|| {
            let mut b = BatchScratch::new();
            b.begin(1, 5);
            let mut out = Vec::new();
            kernels::cdf_rows(path, &b, &mut out);
        });
        assert!(result.is_err());
    }
}

#[test]
fn env_override_parsing() {
    assert_eq!(KernelPath::parse("scalar"), Some(KernelPath::Scalar));
    assert_eq!(KernelPath::parse(" SSE2 "), Some(KernelPath::Sse2));
    assert_eq!(KernelPath::parse("avx2"), Some(KernelPath::Avx2));
    assert_eq!(KernelPath::parse("neon"), None);
    assert!(KernelPath::available().contains(&KernelPath::Scalar));
}
