//! Property-based tests for the baseline recommenders.

use proptest::prelude::*;
use subdex_baselines::patterns::{mine_patterns, MiningConfig};
use subdex_baselines::qagview::{qagview, QagConfig};
use subdex_baselines::sdd::{smart_drill_down, SddConfig};
use subdex_store::{
    Cell, Entity, EntityTableBuilder, RatingTableBuilder, Schema, SelectionQuery, SubjectiveDb,
    Value,
};

#[derive(Debug, Clone)]
struct Spec {
    reviewers: Vec<(u8, u8)>,
    items: Vec<u8>,
    ratings: Vec<(u8, u8)>,
}

fn spec() -> impl Strategy<Value = Spec> {
    (4usize..12, 3usize..8).prop_flat_map(|(n_rev, n_item)| {
        (
            prop::collection::vec((0u8..3, 0u8..3), n_rev),
            prop::collection::vec(0u8..3, n_item),
            prop::collection::vec((0..n_rev as u8, 0..n_item as u8), 20..80),
        )
            .prop_map(|(reviewers, items, ratings)| Spec {
                reviewers,
                items,
                ratings,
            })
    })
}

fn build(s: &Spec) -> SubjectiveDb {
    let mut us = Schema::new();
    us.add("ua", false);
    us.add("ub", false);
    let mut ub = EntityTableBuilder::new(us);
    for &(a, b) in &s.reviewers {
        ub.push_row(vec![
            Cell::One(Value::int(i64::from(a))),
            Cell::One(Value::int(i64::from(b))),
        ]);
    }
    let mut is = Schema::new();
    is.add("ia", false);
    let mut ib = EntityTableBuilder::new(is);
    for &a in &s.items {
        ib.push_row(vec![Cell::One(Value::int(i64::from(a)))]);
    }
    let mut rb = RatingTableBuilder::new(vec!["overall".into()], 5);
    for &(r, i) in &s.ratings {
        rb.push(u32::from(r), u32::from(i), &[3]);
    }
    SubjectiveDb::new(
        ub.build(),
        ib.build(),
        rb.build(s.reviewers.len(), s.items.len()),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mined_pattern_coverage_is_exact(s in spec()) {
        let db = build(&s);
        let q = SelectionQuery::all();
        let group = db.rating_group(&q, 0);
        let cfg = MiningConfig { min_coverage: 1, pair_seeds: 8 };
        for (pat, cover) in mine_patterns(&db, &group, &q, &cfg) {
            let manual = group
                .records()
                .iter()
                .filter(|&&rec| pat.matches(&db, rec))
                .count();
            prop_assert_eq!(cover.len(), manual, "pattern coverage must be exact");
        }
    }

    #[test]
    fn sdd_ops_are_valid_distinct_drilldowns(s in spec(), k in 1usize..5) {
        let db = build(&s);
        let q = SelectionQuery::all();
        let ops = smart_drill_down(&db, &q, k, &SddConfig::default());
        prop_assert!(ops.len() <= k);
        let distinct: std::collections::HashSet<_> = ops.iter().collect();
        prop_assert_eq!(distinct.len(), ops.len());
        for op in &ops {
            prop_assert!(!op.is_empty(), "strict refinement of the empty query");
            // Every op selects a non-empty rating group.
            prop_assert!(!db.rating_group(op, 0).is_empty());
        }
    }

    #[test]
    fn qagview_clusters_respect_distance(s in spec(), d in 1usize..4) {
        let db = build(&s);
        let q = SelectionQuery::all();
        let cfg = QagConfig {
            min_distance: d,
            ..QagConfig::default()
        };
        let ops = qagview(&db, &q, 4, &cfg);
        for i in 0..ops.len() {
            for j in (i + 1)..ops.len() {
                prop_assert!(ops[i].diff_size(&ops[j]) >= d);
            }
        }
    }

    #[test]
    fn baselines_never_roll_up(s in spec()) {
        let db = build(&s);
        // Start from a non-empty query: pick the first reviewer's ua value.
        let v = i64::from(s.reviewers[0].0);
        let Some(p) = db.pred(Entity::Reviewer, "ua", &Value::int(v)) else {
            return Ok(());
        };
        let q = SelectionQuery::from_preds(vec![p]);
        for op in smart_drill_down(&db, &q, 3, &SddConfig::default()) {
            prop_assert!(op.contains(&p), "SDD keeps base predicates");
            prop_assert!(op.len() > q.len());
        }
        for op in qagview(&db, &q, 3, &QagConfig::default()) {
            prop_assert!(op.contains(&p), "QAGView keeps base predicates");
            prop_assert!(op.len() > q.len());
        }
    }
}
