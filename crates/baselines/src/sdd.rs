//! Smart Drill-Down (Joglekar, Garcia-Molina, Parameswaran \[35\]).
//!
//! SDD interactively explores a table by maintaining a *rule list*: each
//! rule is a conjunction of attribute–value pairs (stars elsewhere), and a
//! rule list is interesting when its rules (a) cover many tuples, (b) are
//! specific (few stars), and (c) are diverse. The canonical greedy solves
//! the weighted maximum-coverage instance: repeatedly add the rule
//! maximizing `marginal coverage × specificity weight`.
//!
//! Here each selected rule becomes one next-action operation — always a
//! *drill-down* (a superset of the current query's predicates), which is
//! precisely the limitation Table 4 exposes.

use crate::patterns::{mine_patterns, MiningConfig, Pattern};
use subdex_store::{SelectionQuery, SubjectiveDb};

/// Smart-Drill-Down configuration.
#[derive(Debug, Clone, Copy)]
pub struct SddConfig {
    /// Pattern-mining limits.
    pub mining: MiningConfig,
    /// Specificity weight: a rule with `s` predicates weighs `1 + s`
    /// (more specific rules are more interesting, as in \[35\]).
    pub specificity_bonus: f64,
}

impl Default for SddConfig {
    fn default() -> Self {
        Self {
            mining: MiningConfig::default(),
            specificity_bonus: 1.0,
        }
    }
}

/// Returns the top-`k` drill-down operations for the rating group selected
/// by `query`, per the SDD greedy.
pub fn smart_drill_down(
    db: &SubjectiveDb,
    query: &SelectionQuery,
    k: usize,
    cfg: &SddConfig,
) -> Vec<SelectionQuery> {
    // scan_group yields byte-identical records to rating_group and carries
    // the gathered entity-row columns that mine_patterns exploits.
    let group = db.scan_group(query, 0x5dd);
    if group.is_empty() || k == 0 {
        return Vec::new();
    }
    let mut candidates = mine_patterns(db, &group, query, &cfg.mining);
    let mut covered = vec![false; group.len()];
    let mut chosen: Vec<Pattern> = Vec::new();

    while chosen.len() < k && !candidates.is_empty() {
        // Greedy: best marginal coverage × specificity weight.
        let mut best: Option<(usize, f64)> = None;
        for (i, (pat, cover)) in candidates.iter().enumerate() {
            let marginal = cover.iter().filter(|&&gi| !covered[gi as usize]).count();
            if marginal == 0 {
                continue;
            }
            let weight = 1.0 + cfg.specificity_bonus * pat.specificity() as f64;
            let score = marginal as f64 * weight;
            if best.is_none_or(|(_, s)| score > s) {
                best = Some((i, score));
            }
        }
        // When everything is already covered, SDD still fills the rule
        // list with the highest raw-score distinct rules (total coverage ×
        // weight), as the rule-list objective is not purely marginal.
        if best.is_none() {
            for (i, (pat, cover)) in candidates.iter().enumerate() {
                let weight = 1.0 + cfg.specificity_bonus * pat.specificity() as f64;
                let score = cover.len() as f64 * weight;
                if best.is_none_or(|(_, s)| score > s) {
                    best = Some((i, score));
                }
            }
        }
        let Some((idx, _)) = best else { break };
        let (pat, cover) = candidates.swap_remove(idx);
        for &gi in &cover {
            covered[gi as usize] = true;
        }
        // Rule-list diversity: drop candidates identical to the chosen one
        // (subsumed rules keep competing on marginal coverage, as in SDD).
        candidates.retain(|(p, _)| p.distance(&pat) > 0);
        chosen.push(pat);
    }

    chosen.into_iter().map(|p| p.to_query(query)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use subdex_store::{Cell, Entity, EntityTableBuilder, RatingTableBuilder, Schema, Value};

    /// 60% of reviewers are students in NYC — the dominant rule.
    fn db() -> SubjectiveDb {
        let mut us = Schema::new();
        us.add("occupation", false);
        let mut ub = EntityTableBuilder::new(us);
        for i in 0..10 {
            ub.push_row(vec![Cell::from(if i < 6 { "student" } else { "artist" })]);
        }
        let mut is = Schema::new();
        is.add("city", false);
        let mut ib = EntityTableBuilder::new(is);
        for i in 0..5 {
            ib.push_row(vec![Cell::from(if i < 3 { "NYC" } else { "SF" })]);
        }
        let mut rb = RatingTableBuilder::new(vec!["overall".into()], 5);
        for r in 0..10u32 {
            for i in 0..5u32 {
                rb.push(r, i, &[3]);
            }
        }
        SubjectiveDb::new(ub.build(), ib.build(), rb.build(10, 5))
    }

    #[test]
    fn returns_k_drilldowns_extending_query() {
        let db = db();
        let q = SelectionQuery::all();
        let ops = smart_drill_down(&db, &q, 3, &SddConfig::default());
        assert_eq!(ops.len(), 3);
        for op in &ops {
            assert!(!op.is_empty(), "each op refines the query");
            assert_eq!(op.diff_size(&q), op.len(), "pure additions only");
        }
        // All distinct.
        let set: std::collections::HashSet<_> = ops.iter().collect();
        assert_eq!(set.len(), ops.len());
    }

    #[test]
    fn specificity_prefers_conjunctions() {
        // student ∧ NYC covers 6×3 = 18 of 50 with weight 3 (score 54);
        // student alone covers 30 with weight 2 (score 60) → first pick is
        // the single; the pair should follow from marginal coverage of the
        // remaining records.
        let db = db();
        let ops = smart_drill_down(&db, &SelectionQuery::all(), 2, &SddConfig::default());
        assert!(ops[0].len() == 1 || ops[0].len() == 2);
        assert!(!ops.is_empty());
    }

    #[test]
    fn respects_existing_predicates() {
        let db = db();
        let student = db
            .pred(Entity::Reviewer, "occupation", &Value::str("student"))
            .unwrap();
        let q = SelectionQuery::from_preds(vec![student]);
        let ops = smart_drill_down(&db, &q, 2, &SddConfig::default());
        for op in &ops {
            assert!(op.contains(&student), "base predicates preserved");
            assert!(op.len() > q.len(), "strictly drills down");
        }
    }

    #[test]
    fn empty_group_returns_nothing() {
        let db = db();
        let s = db
            .pred(Entity::Reviewer, "occupation", &Value::str("student"))
            .unwrap();
        let a = db
            .pred(Entity::Reviewer, "occupation", &Value::str("artist"))
            .unwrap();
        let q = SelectionQuery::from_preds(vec![s, a]);
        assert!(smart_drill_down(&db, &q, 3, &SddConfig::default()).is_empty());
        assert!(smart_drill_down(&db, &SelectionQuery::all(), 0, &SddConfig::default()).is_empty());
    }

    #[test]
    fn never_emits_rollups() {
        // The defining limitation vs SubDEx: every op is a superset.
        let db = db();
        let student = db
            .pred(Entity::Reviewer, "occupation", &Value::str("student"))
            .unwrap();
        let q = SelectionQuery::from_preds(vec![student]);
        for op in smart_drill_down(&db, &q, 3, &SddConfig::default()) {
            for p in q.preds() {
                assert!(op.contains(p));
            }
        }
    }
}
