//! Shared pattern machinery for the baselines.
//!
//! Both baselines view the rating group as a joined
//! reviewer ⋈ rating ⋈ item table and mine *patterns* — conjunctions of
//! attribute–value pairs over either entity — ranked by how many of the
//! group's records they cover.

use subdex_store::{AttrValue, Entity, RatingGroup, RecordId, SelectionQuery, SubjectiveDb};

/// A candidate pattern: a small conjunction of predicates extending the
/// current query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    /// The added predicates (sorted; see [`SelectionQuery`] canonical form).
    pub preds: Vec<AttrValue>,
}

impl Pattern {
    /// Single-predicate pattern.
    pub fn single(p: AttrValue) -> Self {
        Self { preds: vec![p] }
    }

    /// Two-predicate pattern (sorted canonical order).
    pub fn pair(a: AttrValue, b: AttrValue) -> Self {
        let mut preds = vec![a, b];
        preds.sort();
        Self { preds }
    }

    /// Number of predicates — the *specificity* weight in SDD's scoring.
    pub fn specificity(&self) -> usize {
        self.preds.len()
    }

    /// Number of attribute–value pairs in which two patterns differ
    /// (QAGView's cluster-distance `D`).
    pub fn distance(&self, other: &Self) -> usize {
        let mut diff = 0;
        for p in &self.preds {
            if !other.preds.contains(p) {
                diff += 1;
            }
        }
        for p in &other.preds {
            if !self.preds.contains(p) {
                diff += 1;
            }
        }
        diff
    }

    /// Whether a rating record matches every predicate.
    pub fn matches(&self, db: &SubjectiveDb, rec: RecordId) -> bool {
        self.preds.iter().all(|p| {
            let row = match p.entity {
                Entity::Reviewer => db.ratings().reviewer_of(rec),
                Entity::Item => db.ratings().item_of(rec),
            };
            db.table(p.entity).row_has(row, p.attr, p.value)
        })
    }

    /// The drill-down operation this pattern represents.
    pub fn to_query(&self, base: &SelectionQuery) -> SelectionQuery {
        let mut q = base.clone();
        for &p in &self.preds {
            q.add(p);
        }
        q
    }
}

/// Candidate-mining limits.
#[derive(Debug, Clone, Copy)]
pub struct MiningConfig {
    /// Minimum records a single predicate must cover to seed candidates.
    pub min_coverage: usize,
    /// Top single predicates (by coverage) combined into pairs.
    pub pair_seeds: usize,
}

impl Default for MiningConfig {
    fn default() -> Self {
        Self {
            min_coverage: 5,
            pair_seeds: 16,
        }
    }
}

/// Mines candidate patterns (singles + pairs) over the group's records,
/// skipping attributes the base query already constrains. Returns patterns
/// with their exact coverage (record index lists into `group`).
pub fn mine_patterns(
    db: &SubjectiveDb,
    group: &RatingGroup,
    base: &SelectionQuery,
    cfg: &MiningConfig,
) -> Vec<(Pattern, Vec<u32>)> {
    // Count coverage of every admissible single predicate with one pass.
    let mut singles: Vec<(AttrValue, Vec<u32>)> = Vec::new();
    for entity in [Entity::Reviewer, Entity::Item] {
        let table = db.table(entity);
        // Resolve record → entity row once per side, not once per
        // (side, attribute): groups built through the scan layer carry the
        // gathered row columns already, everything else pays one gather.
        let gathered: Vec<u32>;
        let rows: &[u32] = match group.entity_rows(entity) {
            Some(rows) => rows,
            None => {
                gathered = group
                    .records()
                    .iter()
                    .map(|&rec| match entity {
                        Entity::Reviewer => db.ratings().reviewer_of(rec),
                        Entity::Item => db.ratings().item_of(rec),
                    })
                    .collect();
                &gathered
            }
        };
        for attr in table.schema().attr_ids() {
            if base.constrains(entity, attr) || table.dictionary(attr).len() < 2 {
                continue;
            }
            let n_values = table.dictionary(attr).len();
            let mut covers: Vec<Vec<u32>> = vec![Vec::new(); n_values];
            for (gi, &row) in rows.iter().enumerate() {
                for &v in table.values(row, attr) {
                    covers[v.index()].push(gi as u32);
                }
            }
            for (v, cover) in covers.into_iter().enumerate() {
                if cover.len() >= cfg.min_coverage {
                    singles.push((
                        AttrValue::new(entity, attr, subdex_store::ValueId(v as u32)),
                        cover,
                    ));
                }
            }
        }
    }
    singles.sort_by_key(|(_, cover)| std::cmp::Reverse(cover.len()));

    let mut out: Vec<(Pattern, Vec<u32>)> = Vec::new();
    for (p, cover) in &singles {
        out.push((Pattern::single(*p), cover.clone()));
    }

    // Pairs from the most covering seeds (sorted-list intersection).
    let seeds = &singles[..singles.len().min(cfg.pair_seeds)];
    for i in 0..seeds.len() {
        for j in (i + 1)..seeds.len() {
            let (a, ca) = &seeds[i];
            let (b, cb) = &seeds[j];
            if a.entity == b.entity && a.attr == b.attr {
                continue; // same single-valued attribute cannot take 2 values
            }
            let inter = intersect_sorted(ca, cb);
            if inter.len() >= cfg.min_coverage {
                out.push((Pattern::pair(*a, *b), inter));
            }
        }
    }
    out
}

fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use subdex_store::{Cell, EntityTableBuilder, RatingTableBuilder, Schema};

    fn db() -> SubjectiveDb {
        let mut us = Schema::new();
        us.add("gender", false);
        let mut ub = EntityTableBuilder::new(us);
        for i in 0..10 {
            ub.push_row(vec![Cell::from(if i < 6 { "F" } else { "M" })]);
        }
        let mut is = Schema::new();
        is.add("city", false);
        let mut ib = EntityTableBuilder::new(is);
        for i in 0..4 {
            ib.push_row(vec![Cell::from(if i < 2 { "NYC" } else { "SF" })]);
        }
        let mut rb = RatingTableBuilder::new(vec!["overall".into()], 5);
        for r in 0..10u32 {
            for i in 0..4u32 {
                rb.push(r, i, &[3]);
            }
        }
        SubjectiveDb::new(ub.build(), ib.build(), rb.build(10, 4))
    }

    #[test]
    fn mines_singles_with_exact_coverage() {
        let db = db();
        let q = SelectionQuery::all();
        let group = db.rating_group(&q, 0);
        let mined = mine_patterns(&db, &group, &q, &MiningConfig::default());
        // gender F covers 6×4 = 24 of 40; NYC covers 10×2 = 20.
        let f_cover = mined
            .iter()
            .find(|(p, _)| {
                p.specificity() == 1
                    && {
                        let pr = p.preds[0];
                        pr.entity == Entity::Reviewer
                    }
                    && db.describe_pred(&p.preds[0]).contains("= F")
            })
            .map(|(_, c)| c.len());
        assert_eq!(f_cover, Some(24));
    }

    #[test]
    fn mines_pairs_with_intersection() {
        let db = db();
        let q = SelectionQuery::all();
        let group = db.rating_group(&q, 0);
        let mined = mine_patterns(&db, &group, &q, &MiningConfig::default());
        let pair = mined
            .iter()
            .find(|(p, _)| p.specificity() == 2)
            .expect("pairs mined");
        // Pair coverage must equal manual recount.
        let manual = group
            .records()
            .iter()
            .filter(|&&rec| pair.0.matches(&db, rec))
            .count();
        assert_eq!(pair.1.len(), manual);
    }

    #[test]
    fn mining_identical_with_and_without_gathered_rows() {
        let db = db();
        let q = SelectionQuery::all();
        let plain = db.rating_group(&q, 7); // resolves rows record by record
        let columnar = db.scan_group(&q, 7); // carries gathered row columns
        assert!(!plain.has_entity_rows());
        assert!(columnar.has_entity_rows());
        assert_eq!(plain.records(), columnar.records());
        let cfg = MiningConfig::default();
        assert_eq!(
            mine_patterns(&db, &plain, &q, &cfg),
            mine_patterns(&db, &columnar, &q, &cfg)
        );
    }

    #[test]
    fn constrained_attrs_excluded() {
        let db = db();
        let f = db
            .pred(Entity::Reviewer, "gender", &subdex_store::Value::str("F"))
            .unwrap();
        let q = SelectionQuery::from_preds(vec![f]);
        let group = db.rating_group(&q, 0);
        let mined = mine_patterns(&db, &group, &q, &MiningConfig::default());
        assert!(mined
            .iter()
            .all(|(p, _)| p.preds.iter().all(|pr| pr.entity != Entity::Reviewer)));
    }

    #[test]
    fn min_coverage_filters() {
        let db = db();
        let q = SelectionQuery::all();
        let group = db.rating_group(&q, 0);
        let cfg = MiningConfig {
            min_coverage: 25,
            pair_seeds: 8,
        };
        let mined = mine_patterns(&db, &group, &q, &cfg);
        assert!(mined.iter().all(|(_, c)| c.len() >= 25));
    }

    #[test]
    fn pattern_distance_and_query() {
        let db = db();
        let f = db
            .pred(Entity::Reviewer, "gender", &subdex_store::Value::str("F"))
            .unwrap();
        let nyc = db
            .pred(Entity::Item, "city", &subdex_store::Value::str("NYC"))
            .unwrap();
        let a = Pattern::single(f);
        let b = Pattern::pair(f, nyc);
        assert_eq!(a.distance(&b), 1);
        assert_eq!(a.distance(&a), 0);
        let q = b.to_query(&SelectionQuery::all());
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn intersect_sorted_basic() {
        assert_eq!(intersect_sorted(&[1, 3, 5, 7], &[2, 3, 7, 9]), vec![3, 7]);
        assert!(intersect_sorted(&[], &[1]).is_empty());
    }
}
