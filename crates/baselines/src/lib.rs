//! # subdex-baselines
//!
//! The two state-of-the-art next-action recommenders the paper compares
//! against (Section 5.1, Table 4), re-implemented over the same store:
//!
//! * [`sdd`] — **Smart Drill-Down** (Joglekar et al. \[35\]): greedily
//!   grows a list of "interesting" rules over the joined
//!   reviewer ⋈ rating ⋈ item view, scoring a rule by its *marginal*
//!   coverage times its specificity; each rule becomes a drill-down
//!   operation.
//! * [`qagview`](crate::qagview()) — **QAGView** (Wen et al. \[58\]): a diverse `k`-cluster
//!   summary of the rating group — greedy weighted set cover under the
//!   constraint that clusters differ in at least `D` attribute–value
//!   pairs; each cluster becomes a selection operation.
//!
//! Both systems, by construction, only emit operations that *refine* the
//! current selection. That is the paper's Table 4 punchline: identifying
//! a second irregular group requires a roll-up, which neither baseline can
//! express, so SubDEx's recommendations win.

pub mod patterns;
pub mod qagview;
pub mod sdd;

#[doc(inline)]
pub use qagview::qagview;
pub use sdd::smart_drill_down;
