//! QAGView-style diverse result summarization (Wen, Zhu, Roy, Yang \[58\]).
//!
//! QAGView summarizes a (weighted) query result with `k` clusters, chosen
//! to cover a target fraction of the result while pairwise differing in at
//! least `D` attribute–value pairs. Following the paper's setup
//! (Section 5.1): record weights are 1 (rating records are unvalued), the
//! coverage threshold is `|g_R| / 2`, and `D = 2`.
//!
//! Each cluster's description is a conjunction of attribute–value pairs
//! over the underlying reviewer and item groups, i.e. a selection
//! operation — again drill-down only.

use crate::patterns::{mine_patterns, MiningConfig, Pattern};
use subdex_store::{SelectionQuery, SubjectiveDb};

/// QAGView configuration.
#[derive(Debug, Clone, Copy)]
pub struct QagConfig {
    /// Pattern-mining limits.
    pub mining: MiningConfig,
    /// Minimum attribute–value difference between chosen clusters (`D`).
    pub min_distance: usize,
    /// Fraction of the group the summary should cover (paper: 0.5).
    pub coverage_target: f64,
}

impl Default for QagConfig {
    fn default() -> Self {
        Self {
            mining: MiningConfig::default(),
            min_distance: 2,
            coverage_target: 0.5,
        }
    }
}

/// Returns up to `k` diverse cluster operations summarizing the rating
/// group selected by `query`.
pub fn qagview(
    db: &SubjectiveDb,
    query: &SelectionQuery,
    k: usize,
    cfg: &QagConfig,
) -> Vec<SelectionQuery> {
    // scan_group yields byte-identical records to rating_group and carries
    // the gathered entity-row columns that mine_patterns exploits.
    let group = db.scan_group(query, 0x9a9);
    if group.is_empty() || k == 0 {
        return Vec::new();
    }
    let candidates = mine_patterns(db, &group, query, &cfg.mining);
    let mut covered = vec![false; group.len()];
    let mut covered_count = 0usize;
    let target = (group.len() as f64 * cfg.coverage_target).ceil() as usize;
    let mut chosen: Vec<(Pattern, Vec<u32>)> = Vec::new();
    let mut remaining: Vec<(Pattern, Vec<u32>)> = candidates;

    while chosen.len() < k {
        // Greedy marginal coverage among candidates far enough from every
        // chosen cluster.
        let mut best: Option<(usize, usize)> = None;
        for (i, (pat, cover)) in remaining.iter().enumerate() {
            if chosen
                .iter()
                .any(|(c, _)| c.distance(pat) < cfg.min_distance)
            {
                continue;
            }
            let marginal = cover.iter().filter(|&&gi| !covered[gi as usize]).count();
            if marginal == 0 {
                continue;
            }
            if best.is_none_or(|(_, m)| marginal > m) {
                best = Some((i, marginal));
            }
        }
        let Some((idx, marginal)) = best else { break };
        let (pat, cover) = remaining.swap_remove(idx);
        for &gi in &cover {
            if !covered[gi as usize] {
                covered[gi as usize] = true;
            }
        }
        covered_count += marginal;
        chosen.push((pat, cover));
        if covered_count >= target && chosen.len() >= k.min(2) {
            // Coverage satisfied; keep adding only while diversity allows
            // and k not reached — matching QAGView's "informative but
            // small" summaries.
            continue;
        }
    }

    chosen.into_iter().map(|(p, _)| p.to_query(query)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use subdex_store::{Cell, Entity, EntityTableBuilder, RatingTableBuilder, Schema, Value};

    fn db() -> SubjectiveDb {
        let mut us = Schema::new();
        us.add("occupation", false);
        us.add("gender", false);
        let mut ub = EntityTableBuilder::new(us);
        for i in 0..12 {
            ub.push_row(vec![
                Cell::from(["student", "artist", "teacher"][i % 3]),
                Cell::from(if i % 2 == 0 { "F" } else { "M" }),
            ]);
        }
        let mut is = Schema::new();
        is.add("city", false);
        let mut ib = EntityTableBuilder::new(is);
        for i in 0..6 {
            ib.push_row(vec![Cell::from(if i < 3 { "NYC" } else { "SF" })]);
        }
        let mut rb = RatingTableBuilder::new(vec!["overall".into()], 5);
        for r in 0..12u32 {
            for i in 0..6u32 {
                rb.push(r, i, &[3]);
            }
        }
        SubjectiveDb::new(ub.build(), ib.build(), rb.build(12, 6))
    }

    #[test]
    fn clusters_are_diverse() {
        let db = db();
        let ops = qagview(&db, &SelectionQuery::all(), 3, &QagConfig::default());
        assert!(ops.len() >= 2, "got {}", ops.len());
        // Reconstruct pairwise distance on predicate sets.
        for i in 0..ops.len() {
            for j in (i + 1)..ops.len() {
                assert!(
                    ops[i].diff_size(&ops[j]) >= 2,
                    "clusters {i} and {j} too similar"
                );
            }
        }
    }

    #[test]
    fn summary_covers_half_the_group() {
        let db = db();
        let q = SelectionQuery::all();
        let ops = qagview(&db, &q, 3, &QagConfig::default());
        let group = db.rating_group(&q, 1);
        let mut covered = 0;
        'rec: for &rec in group.records() {
            for op in &ops {
                let matches = op.preds().iter().all(|p| {
                    let row = match p.entity {
                        Entity::Reviewer => db.ratings().reviewer_of(rec),
                        Entity::Item => db.ratings().item_of(rec),
                    };
                    db.table(p.entity).row_has(row, p.attr, p.value)
                });
                if matches {
                    covered += 1;
                    continue 'rec;
                }
            }
        }
        assert!(
            covered * 2 >= group.len(),
            "covered {covered} of {}",
            group.len()
        );
    }

    #[test]
    fn all_ops_are_drilldowns() {
        let db = db();
        let f = db
            .pred(Entity::Reviewer, "gender", &Value::str("F"))
            .unwrap();
        let q = SelectionQuery::from_preds(vec![f]);
        for op in qagview(&db, &q, 3, &QagConfig::default()) {
            assert!(op.contains(&f));
            assert!(op.len() > q.len());
        }
    }

    #[test]
    fn empty_inputs() {
        let db = db();
        assert!(qagview(&db, &SelectionQuery::all(), 0, &QagConfig::default()).is_empty());
        let s = db
            .pred(Entity::Reviewer, "gender", &Value::str("F"))
            .unwrap();
        let m = db
            .pred(Entity::Reviewer, "gender", &Value::str("M"))
            .unwrap();
        let contradiction = SelectionQuery::from_preds(vec![s, m]);
        assert!(qagview(&db, &contradiction, 3, &QagConfig::default()).is_empty());
    }

    #[test]
    fn min_distance_constraint_respected() {
        let db = db();
        for d in [1usize, 2, 3] {
            let cfg = QagConfig {
                min_distance: d,
                ..Default::default()
            };
            let ops = qagview(&db, &SelectionQuery::all(), 4, &cfg);
            for i in 0..ops.len() {
                for j in (i + 1)..ops.len() {
                    assert!(
                        ops[i].diff_size(&ops[j]) >= d,
                        "D={d}: clusters {i},{j} too close"
                    );
                }
            }
        }
    }
}
