//! # SubDEx — Subjective Data Exploration
//!
//! A from-scratch Rust implementation of
//! *Exploring Ratings in Subjective Databases*
//! (Amer-Yahia, Milo, Youngmann — SIGMOD '21; demonstrated at ICDE '21).
//!
//! SubDEx guides the exploration of *subjective databases* — items,
//! reviewers, and multi-dimensional rating records — through an iterative
//! process: at every step it displays the `k` most **useful** and
//! **diverse** *rating maps* (grouped rating histograms) for the current
//! selection, and recommends the top-`o` next-step operations, staying
//! interactive through confidence-interval and multi-armed-bandit pruning.
//!
//! This crate is a facade re-exporting the workspace layers:
//!
//! * [`store`] — columnar subjective-database storage and selection queries;
//! * [`core`] — rating maps, utility, pruning, diversity, recommendations,
//!   the SDE engine and the three exploration modes;
//! * [`data`] — synthetic dataset twins of MovieLens / Yelp / Hotels, the
//!   review-sentiment ingestion pipeline, and study workloads;
//! * [`baselines`] — Smart Drill-Down and QAGView comparison systems;
//! * [`sim`] — the simulated user-study harness;
//! * [`stats`] — the numeric substrate (distributions, EMD, bounds, ANOVA);
//! * [`service`] — a concurrent multi-session exploration server with a
//!   shared group cache and bounded-queue backpressure;
//! * [`persist`] — versioned columnar snapshots and a rating write-ahead
//!   log: durable databases with crash recovery and warm start.
//!
//! ## Quickstart
//!
//! ```
//! use subdex::prelude::*;
//!
//! // A small Yelp-like database with 4 rating dimensions.
//! let ds = subdex::data::yelp::dataset(GenParams::new(500, 60, 4000, 1));
//! let db = std::sync::Arc::new(ds.db);
//!
//! // One exploration step over everything.
//! let mut engine = SdeEngine::new(db.clone(), EngineConfig::default());
//! let result = engine.step(&SelectionQuery::all());
//! assert_eq!(result.maps.len(), 3);          // k = 3 diverse rating maps
//! assert!(!result.recommendations.is_empty()); // top-o next operations
//! ```

pub use subdex_baselines as baselines;
pub use subdex_core as core;
pub use subdex_data as data;
pub use subdex_persist as persist;
pub use subdex_service as service;
pub use subdex_sim as sim;
pub use subdex_stats as stats;
pub use subdex_store as store;

/// The most common imports, in one place.
pub mod prelude {
    pub use subdex_core::{
        EngineConfig, ExplorationMode, ExplorationSession, PruningStrategy, RatingMap,
        Recommendation, ScoredRatingMap, SdeEngine, StepResult,
    };
    pub use subdex_data::{GenParams, Insight, IrregularSpec};
    pub use subdex_persist::{PersistStats, PersistentStore};
    pub use subdex_service::{ServiceConfig, SessionId, StepRequest, SubdexService, SubmitError};
    pub use subdex_store::{
        AttrValue, Entity, GroupCache, RatingDraft, SelectionQuery, StoreError, SubjectiveDb, Value,
    };
}
