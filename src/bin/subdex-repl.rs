//! Interactive SubDEx exploration in the terminal — the library's
//! stand-in for the paper's HTML UI (Figure 5).
//!
//! ```text
//! cargo run --release --bin subdex-repl -- [movielens|yelp|hotels] [--scale F]
//! ```
//!
//! Commands at the prompt:
//!
//! ```text
//! select <pred> [AND <pred>]   apply a selection (e.g. reviewer.age_group = young)
//! rec <n>                      apply recommendation n of the last step
//! back                         undo the last operation
//! show                         redisplay the current step
//! narrate                      natural-language summary of the current step
//! save <file> / load <file>    persist / replay the session log
//! help, quit
//! ```

use std::io::{BufRead, Write};
use std::sync::Arc;
use subdex::core::explain::narrate_step;
use subdex::core::render::render_map;
use subdex::core::sessionlog::{OpSource, SessionLog};
use subdex::prelude::*;
use subdex::store::parse_query;

struct Repl {
    db: Arc<SubjectiveDb>,
    engine: SdeEngine,
    log: SessionLog,
    history: Vec<SelectionQuery>,
    last: Option<StepResult>,
}

impl Repl {
    fn new(db: Arc<SubjectiveDb>) -> Self {
        let engine = SdeEngine::new(db.clone(), EngineConfig::default());
        Self {
            db,
            engine,
            log: SessionLog::new(),
            history: Vec::new(),
            last: None,
        }
    }

    fn apply(&mut self, query: SelectionQuery, source: OpSource) {
        let res = self.engine.step(&query);
        self.display(&res);
        self.log.record(source, query.clone());
        self.history.push(query);
        self.last = Some(res);
    }

    fn display(&self, res: &StepResult) {
        println!(
            "\n── {} · {} records · {:?} ──",
            self.db.describe_query(&res.query),
            res.group_size,
            res.stats.elapsed
        );
        for (i, sm) in res.maps.iter().enumerate() {
            println!(
                "\n[map {}]  utility {:.3} (DW {:.3})",
                i + 1,
                sm.utility,
                sm.dw_utility
            );
            print!("{}", render_map(&self.db, &sm.map));
        }
        if !res.recommendations.is_empty() {
            println!("\nRecommendations:");
            for (i, rec) in res.recommendations.iter().enumerate() {
                println!(
                    "  rec {} → {}  (utility {:.3}, {} records)",
                    i + 1,
                    self.db.describe_query(&rec.query),
                    rec.utility,
                    rec.group_size
                );
            }
        }
    }

    fn handle(&mut self, line: &str) -> bool {
        let line = line.trim();
        let (cmd, rest) = line.split_once(' ').unwrap_or((line, ""));
        match cmd {
            "" => {}
            "quit" | "exit" | "q" => return false,
            "help" | "?" => {
                println!(
                    "commands: select <preds> | rec <n> | back | show | narrate | \
                     save <file> | load <file> | quit"
                );
            }
            "select" | "s" => match parse_query(&self.db, rest) {
                Ok(q) => self.apply(q, OpSource::User),
                Err(e) => println!("error: {e}"),
            },
            "rec" | "r" => {
                let idx: usize = match rest.trim().parse::<usize>() {
                    Ok(n) if n >= 1 => n - 1,
                    _ => {
                        println!("usage: rec <n>");
                        return true;
                    }
                };
                let Some(q) = self
                    .last
                    .as_ref()
                    .and_then(|s| s.recommendations.get(idx))
                    .map(|r| r.query.clone())
                else {
                    println!("no such recommendation");
                    return true;
                };
                self.apply(q, OpSource::Recommendation);
            }
            "back" | "b" => {
                if self.history.len() < 2 {
                    println!("nothing to go back to");
                } else {
                    self.history.pop();
                    let q = self.history.pop().expect("checked length");
                    self.apply(q, OpSource::User);
                }
            }
            "show" => match &self.last {
                Some(res) => self.display(res),
                None => println!("no step yet — try `select *`"),
            },
            "narrate" | "n" => match &self.last {
                Some(res) => print!("{}", narrate_step(&self.db, res)),
                None => println!("no step yet"),
            },
            "save" => {
                let path = rest.trim();
                if path.is_empty() {
                    println!("usage: save <file>");
                } else {
                    match std::fs::write(path, self.log.serialize(&self.db)) {
                        Ok(()) => println!("saved {} operations to {path}", self.log.len()),
                        Err(e) => println!("error: {e}"),
                    }
                }
            }
            "load" => {
                let path = rest.trim();
                match std::fs::read_to_string(path)
                    .map_err(|e| e.to_string())
                    .and_then(|text| {
                        SessionLog::deserialize(&self.db, &text).map_err(|e| e.to_string())
                    }) {
                    Ok(loaded) => {
                        println!("replaying {} operations…", loaded.len());
                        for entry in loaded.entries().to_vec() {
                            self.apply(entry.query, entry.source);
                        }
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
            other => println!("unknown command '{other}' — try `help`"),
        }
        true
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dataset = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("yelp");
    let scale: f64 = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.1);

    println!("Generating {dataset} dataset (scale {scale})…");
    let ds = match dataset {
        "movielens" => subdex::data::movielens::dataset(
            subdex::data::movielens::default_params().scaled(scale),
        ),
        "hotels" => {
            subdex::data::hotels::dataset(subdex::data::hotels::default_params().scaled(scale))
        }
        _ => {
            let mut p = subdex::data::yelp::default_params().scaled(scale);
            p.items = 93;
            subdex::data::yelp::dataset(p)
        }
    };
    let db = Arc::new(ds.db);
    let s = db.stats();
    println!(
        "{} reviewers · {} items · {} ratings · {} dimensions. Type `help` for commands.",
        s.reviewer_count, s.item_count, s.rating_count, s.dim_count
    );

    let mut repl = Repl::new(db);
    repl.apply(SelectionQuery::all(), OpSource::User);

    let stdin = std::io::stdin();
    loop {
        print!("subdex> ");
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                if !repl.handle(&line) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    println!("bye.");
}
