//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API:
//! `lock()`, `read()`, and `write()` return guards directly instead of
//! `Result`s. A poisoned lock (a thread panicked while holding it) is
//! recovered by taking the inner guard anyway — matching `parking_lot`'s
//! behavior of not tracking poison at all. Contention behavior is whatever
//! the platform's native locks provide; the adaptive-spinning fast path of
//! the real crate is absent, which is irrelevant at this workspace's scale.

use std::sync::{self, PoisonError};

/// Guard type for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Shared guard type for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard type for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A readers–writer lock whose acquisitions cannot fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(5));
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn lock_survives_holder_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock stays usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn try_variants() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());

        let l = RwLock::new(0);
        let r = l.read();
        assert!(l.try_write().is_none());
        assert!(l.try_read().is_some());
        drop(r);
        assert!(l.try_write().is_some());
    }
}
