//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access. The workspace derives
//! `Serialize`/`Deserialize` on several types but never serializes anything
//! (there is no `serde_json` or other format crate in the tree), so this
//! stand-in provides the two trait names and derive macros that expand to
//! nothing. If a future PR introduces real serialization, replace this
//! vendored crate with the real one (the API here is name-compatible).

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
///
/// The no-op derive does not implement it; no code in this workspace
/// requires the bound.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}
