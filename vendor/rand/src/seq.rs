//! Slice helpers (`shuffle`).

use crate::{Rng, RngCore};

/// In-place random permutation of slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle driven by `rng`.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(9);
        let v = [1, 2, 3];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*v.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
