//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the minimal slice of `rand` it actually uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::random`], [`Rng::random_bool`],
//! [`Rng::random_range`], and [`seq::SliceRandom::shuffle`].
//!
//! The generator behind [`rngs::StdRng`] and [`rngs::SmallRng`] is
//! xoshiro256** seeded through SplitMix64 — fast, well distributed, and
//! fully deterministic for a given seed. The output stream differs from the
//! real `rand` crate's `StdRng` (which is ChaCha12); nothing in this
//! workspace depends on the exact stream, only on determinism.

pub mod rngs;
pub mod seq;

/// Types that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// Creates an RNG whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The raw generator interface: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Values samplable from raw bits (the subset of `Standard` we need).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a uniform integer/float can be drawn from.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range. Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain: every draw is in range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Uniform draw from `[0, span)` (`span > 0`) via Lemire-style rejection.
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Accept draws below the largest multiple of `span` so the result is
    // exactly uniform; the rejection zone is always < span / 2^63 of draws.
    let leftover = (u64::MAX % span).wrapping_add(1) % span;
    let zone = u64::MAX - leftover;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// High-level sampling methods, matching the `rand` 0.9 names.
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.random::<f64>() < p
    }

    /// Uniform draw from a (half-open or inclusive) range.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let w: u8 = rng.random_range(1..=5);
            assert!((1..=5).contains(&w));
            let f: f64 = rng.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..2000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 2000.0;
        assert!((0.4..0.6).contains(&mean), "mean {mean} far from 0.5");
    }

    #[test]
    fn random_bool_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..4000).filter(|_| rng.random_bool(0.3)).count();
        let frac = hits as f64 / 4000.0;
        assert!((0.25..0.35).contains(&frac), "frac {frac}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "overwhelmingly unlikely to be identity");
    }
}
