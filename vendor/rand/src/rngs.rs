//! Concrete generators: xoshiro256** seeded via SplitMix64.

use crate::{RngCore, SeedableRng};

/// The workspace's standard RNG (xoshiro256**).
///
/// Not the real `rand` crate's ChaCha12-based `StdRng` — see the crate docs.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

/// Same generator as [`StdRng`]; the real crate distinguishes the two by
/// speed/quality trade-off, which is irrelevant here.
pub type SmallRng = StdRng;

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let (mut n2, mut n3) = (s2 ^ s0, s3 ^ s1);
        let n1 = s1 ^ n2;
        let n0 = s0 ^ n3;
        n2 ^= t;
        n3 = n3.rotate_left(45);
        self.s = [n0, n1, n2, n3];
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_differ_across_seeds() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..64u64 {
            let mut r = StdRng::seed_from_u64(seed);
            assert!(seen.insert(r.next_u64()), "collision at seed {seed}");
        }
    }

    #[test]
    fn no_short_cycles() {
        let mut r = StdRng::seed_from_u64(0);
        let first = r.next_u64();
        for _ in 0..10_000 {
            assert_ne!(r.next_u64(), first, "suspiciously short cycle");
        }
    }
}
