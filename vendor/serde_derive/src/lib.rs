//! No-op derive macros for the vendored `serde` stand-in.
//!
//! `#[derive(Serialize, Deserialize)]` must parse, but nothing in this
//! workspace ever calls serialization, so both derives expand to an empty
//! token stream (deriving a trait without generating an impl is valid; the
//! bound is simply never satisfied — and never required).

use proc_macro::TokenStream;

/// Expands to nothing; see the crate docs.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; see the crate docs.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
