//! The [`Strategy`] trait and its built-in implementations: numeric ranges,
//! tuples, string patterns, and the combinators `prop_map`,
//! `prop_flat_map`, `prop_filter`.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike the real proptest there is no shrinking: `generate` produces one
/// value directly from the RNG.
pub trait Strategy: Sized {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
        Map { base: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F> {
        FlatMap { base: self, f }
    }

    /// Discards values failing the predicate (regenerating up to a bounded
    /// number of times, then panicking with `whence`).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        f: F,
    ) -> Filter<Self, F> {
        Filter {
            base: self,
            whence,
            f,
        }
    }

    /// Type-erases the strategy (parity with the real API).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        BoxedStrategy {
            inner: Box::new(move |rng: &mut TestRng| self.generate(rng)),
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    base: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.base.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted 1000 attempts: {}", self.whence);
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    #[allow(clippy::type_complexity)]
    inner: Box<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.inner)(rng)
    }
}

/// Always yields a clone of one value (parity with `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ------------------------------------------------------------ numeric ranges

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

// ------------------------------------------------------------------- tuples

macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A / a);
impl_tuple_strategy!(A / a, B / b);
impl_tuple_strategy!(A / a, B / b, C / c);
impl_tuple_strategy!(A / a, B / b, C / c, D / d);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);

// ----------------------------------------------------------- string patterns

/// `&str` as a strategy: the `.{m,n}` pattern family generates strings of
/// length `m..=n` over a printable-plus-tricky-characters alphabet; any
/// other pattern falls back to short random printable strings.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (min, max) = parse_dot_repeat(self).unwrap_or((0, 16));
        let len = if max > min {
            min + rng.below((max - min + 1) as u64) as usize
        } else {
            min
        };
        // Mostly printable ASCII, with occasional separators and non-ASCII
        // to exercise parsers the way arbitrary regex strings would.
        const TRICKY: &[char] = &['\n', '\t', '"', '=', ',', '.', 'é', 'λ', '→', '∧'];
        (0..len)
            .map(|_| {
                if rng.below(8) == 0 {
                    TRICKY[rng.below(TRICKY.len() as u64) as usize]
                } else {
                    char::from(32 + rng.below(95) as u8)
                }
            })
            .collect()
    }
}

/// Parses `.{m,n}` (the only regex family this shim understands).
fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (a, b) = rest.split_once(',')?;
    Some((a.trim().parse().ok()?, b.trim().parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::for_case("strategy-tests", 0, 0)
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (3u32..9).generate(&mut r);
            assert!((3..9).contains(&v));
            let w = (1u8..=5).generate(&mut r);
            assert!((1..=5).contains(&w));
            let f = (-2.0f64..2.0).generate(&mut r);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut r = rng();
        let s = (0u32..10)
            .prop_map(|v| v * 2)
            .prop_filter("even", |v| v % 2 == 0)
            .prop_flat_map(|v| (0u32..v + 1).prop_map(move |w| (v, w)));
        for _ in 0..100 {
            let (v, w) = s.generate(&mut r);
            assert!(v % 2 == 0 && w <= v);
        }
    }

    #[test]
    fn string_pattern_lengths() {
        let mut r = rng();
        for _ in 0..50 {
            let s = ".{0,8}".generate(&mut r);
            assert!(s.chars().count() <= 8);
        }
        assert_eq!(parse_dot_repeat(".{2,40}"), Some((2, 40)));
        assert_eq!(parse_dot_repeat("[a-z]+"), None);
    }

    #[test]
    fn just_yields_constant() {
        let mut r = rng();
        assert_eq!(Just(7).generate(&mut r), 7);
    }
}
