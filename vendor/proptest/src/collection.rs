//! Collection strategies: `prop::collection::vec` and
//! `prop::collection::hash_set`.

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Anything usable as a collection size: an exact length or a length range.
pub trait SizeRange {
    /// Picks a concrete length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty size range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty size range");
        lo + rng.below((hi - lo + 1) as u64) as usize
    }
}

/// Strategy for `Vec<T>` with elements drawn from `element`.
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}

/// See [`vec()`].
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `HashSet<T>`. The requested size is a target: if the element
/// domain is too small to reach it, the set is returned with as many distinct
/// elements as a bounded number of draws produced.
pub fn hash_set<S, R>(element: S, size: R) -> HashSetStrategy<S, R>
where
    S: Strategy,
    S::Value: Hash + Eq,
    R: SizeRange,
{
    HashSetStrategy { element, size }
}

/// See [`hash_set`].
pub struct HashSetStrategy<S, R> {
    element: S,
    size: R,
}

impl<S, R> Strategy for HashSetStrategy<S, R>
where
    S: Strategy,
    S::Value: Hash + Eq,
    R: SizeRange,
{
    type Value = HashSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let target = self.size.pick(rng);
        let mut out = HashSet::with_capacity(target);
        let mut attempts = 0usize;
        while out.len() < target && attempts < target.saturating_mul(10).max(32) {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("collection-tests", 0, 0)
    }

    #[test]
    fn vec_exact_and_ranged_sizes() {
        let mut r = rng();
        assert_eq!(vec(0u8..=9, 5usize).generate(&mut r).len(), 5);
        for _ in 0..50 {
            let v = vec(0u8..=9, 2..8).generate(&mut r);
            assert!((2..8).contains(&v.len()));
        }
    }

    #[test]
    fn hash_set_has_distinct_elements() {
        let mut r = rng();
        let s = hash_set(0u32..1000, 6usize).generate(&mut r);
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn hash_set_small_domain_terminates() {
        let mut r = rng();
        // Only 2 possible values but 10 requested: must not loop forever.
        let s = hash_set(0u8..2, 10usize).generate(&mut r);
        assert!(s.len() <= 2);
    }
}
