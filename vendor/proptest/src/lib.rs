//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this crate reimplements
//! the slice of proptest's API the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`],
//! * the [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map` /
//!   `prop_filter`,
//! * range, tuple, boolean, string-pattern, and collection strategies.
//!
//! Differences from the real crate, on purpose:
//!
//! * **no shrinking** — a failing case reports the exact generated inputs
//!   (they are deterministic per test name and case index, so a failure
//!   reproduces by just re-running the test);
//! * **fewer default cases** (32 instead of 256) — chosen for CI latency;
//!   tests that need more set `ProptestConfig::with_cases` exactly as with
//!   the real crate;
//! * string strategies support the `.{m,n}` pattern family only, which is
//!   what the workspace uses; anything else falls back to short random
//!   printable strings.

pub mod bool;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface the workspace's tests rely on.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines deterministic property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` becomes a `#[test]`
/// that runs `body` against `ProptestConfig::cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]; the config expression is bound
/// outside the per-test repetition so it may be repeated per test.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                let __test_id = concat!(file!(), "::", stringify!($name));
                let mut __case: u32 = 0;
                let mut __rejects: u32 = 0;
                while __case < __config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__test_id, __case, __rejects);
                    let __vals = ( $( $crate::strategy::Strategy::generate(&($strat), &mut __rng), )+ );
                    let __repr = format!("{:#?}", &__vals);
                    let __outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                        move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            let ( $($arg,)+ ) = __vals;
                            $body
                            Ok(())
                        },
                    ));
                    match __outcome {
                        Ok(Ok(())) => {
                            __case += 1;
                        }
                        Ok(Err($crate::test_runner::TestCaseError::Reject(__why))) => {
                            __rejects += 1;
                            if __rejects > __config.cases.saturating_mul(20).max(1000) {
                                panic!(
                                    "proptest '{}': too many rejected cases ({}): {}",
                                    stringify!($name), __rejects, __why
                                );
                            }
                        }
                        Ok(Err($crate::test_runner::TestCaseError::Fail(__why))) => {
                            panic!(
                                "proptest '{}' failed at case {}: {}\ninput: {}",
                                stringify!($name), __case, __why, __repr
                            );
                        }
                        Err(__panic) => {
                            eprintln!(
                                "proptest '{}' panicked at case {}\ninput: {}",
                                stringify!($name), __case, __repr
                            );
                            ::std::panic::resume_unwind(__panic);
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case (returns `Err(TestCaseError::Fail(..))`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), __l, __r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(format!(
                            "{}\n  left: {:?}\n right: {:?}",
                            format!($($fmt)+), __l, __r
                        )),
                    );
                }
            }
        }
    };
}

/// Fails the current case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l
                );
            }
        }
    };
}

/// Rejects the current case (it does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
