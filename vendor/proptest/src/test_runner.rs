//! Configuration, case errors, and the deterministic per-case RNG.

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted cases each test must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Overrides the number of cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

/// Why a case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case's inputs did not satisfy an assumption; generate another.
    Reject(&'static str),
    /// An assertion failed.
    Fail(String),
}

/// Deterministic generator: the stream is a pure function of
/// `(test id, case index, reject count)`, so failures reproduce exactly.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one case of one test.
    pub fn for_case(test_id: &str, case: u32, rejects: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_id.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        h ^= (u64::from(case) << 32) | u64::from(rejects);
        Self {
            state: h.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1,
        }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, span)`; `span` must be nonzero.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let leftover = (u64::MAX % span).wrapping_add(1) % span;
        let zone = u64::MAX - leftover;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % span;
            }
        }
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = TestRng::for_case("t", 3, 0);
        let mut b = TestRng::for_case("t", 3, 0);
        let mut c = TestRng::for_case("t", 4, 0);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_is_in_range() {
        let mut r = TestRng::for_case("u", 0, 0);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
