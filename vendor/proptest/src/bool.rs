//! Boolean strategies (`prop::bool::ANY`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy yielding `true` or `false` with equal probability.
#[derive(Debug, Clone, Copy)]
pub struct Any;

/// The canonical boolean strategy, used as `prop::bool::ANY`.
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_produces_both_values() {
        let mut rng = TestRng::for_case("bool-any", 0, 0);
        let mut seen = [false, false];
        for _ in 0..64 {
            seen[usize::from(ANY.generate(&mut rng))] = true;
        }
        assert_eq!(seen, [true, true]);
    }
}
