//! MPMC channels with the `crossbeam-channel` API surface this workspace
//! uses: [`bounded`], [`unbounded`], clone-able [`Sender`]/[`Receiver`],
//! non-blocking [`Sender::try_send`] (the backpressure edge), and blocking /
//! timed receives.
//!
//! Disconnection follows `crossbeam-channel` semantics: when every `Sender`
//! is dropped, receivers drain the remaining queue and then observe
//! `Disconnected`; when every `Receiver` is dropped, sends fail immediately.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Error from [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The bounded queue is at capacity.
    Full(T),
    /// Every receiver is gone.
    Disconnected(T),
}

/// Error from [`Sender::send`]: every receiver is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error from [`Receiver::recv`]: channel is empty and every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error from [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing queued right now.
    Empty,
    /// Empty and every sender is gone.
    Disconnected,
}

/// Error from [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Nothing arrived within the deadline.
    Timeout,
    /// Empty and every sender is gone.
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    /// Signaled when an item is pushed or the last sender leaves.
    not_empty: Condvar,
    /// Signaled when an item is popped or the last receiver leaves.
    not_full: Condvar,
    /// `usize::MAX` means unbounded.
    capacity: usize,
}

/// Creates a channel that holds at most `cap` queued messages; `try_send`
/// past that returns [`TrySendError::Full`] — the backpressure signal.
///
/// # Panics
/// Panics when `cap == 0` (rendezvous channels are not implemented).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "zero-capacity (rendezvous) channels not supported");
    with_capacity(cap)
}

/// Creates a channel with no queue bound.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(usize::MAX)
}

fn with_capacity<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

/// Producing half; clone for more producers.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Consuming half; clone for more consumers (each message is delivered to
/// exactly one receiver).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> Sender<T> {
    /// Queues `msg` without blocking, or reports why it cannot.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut st = self.shared.lock();
        if st.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if st.queue.len() >= self.shared.capacity {
            return Err(TrySendError::Full(msg));
        }
        st.queue.push_back(msg);
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Queues `msg`, blocking while the channel is full.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut st = self.shared.lock();
        loop {
            if st.receivers == 0 {
                return Err(SendError(msg));
            }
            if st.queue.len() < self.shared.capacity {
                st.queue.push_back(msg);
                drop(st);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            st = self
                .shared
                .not_full
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Pops a message, blocking until one arrives or all senders are gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.shared.lock();
        loop {
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self
                .shared
                .not_empty
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Pops a message if one is queued.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.shared.lock();
        if let Some(msg) = st.queue.pop_front() {
            drop(st);
            self.shared.not_full.notify_one();
            return Ok(msg);
        }
        if st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Pops a message, waiting at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.lock();
        loop {
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _res) = self
                .shared
                .not_empty
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Self {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.lock().receivers += 1;
        Self {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.shared.lock();
        st.senders -= 1;
        let last = st.senders == 0;
        drop(st);
        if last {
            // Wake receivers parked in recv so they observe disconnection.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.shared.lock();
        st.receivers -= 1;
        let last = st.receivers == 0;
        drop(st);
        if last {
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_backpressure() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(tx.len(), 2);
    }

    #[test]
    fn disconnect_on_sender_drop_drains_first() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn disconnect_on_receiver_drop() {
        let (tx, rx) = bounded::<i32>(1);
        drop(rx);
        assert_eq!(tx.try_send(1), Err(TrySendError::Disconnected(1)));
        assert_eq!(tx.send(2), Err(SendError(2)));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = bounded::<i32>(1);
        let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Timeout);
    }

    #[test]
    fn mpmc_delivers_each_message_once() {
        let (tx, rx) = bounded(64);
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        let producers: Vec<_> = (0..2)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(p * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn blocking_send_unblocks_on_recv() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = thread::spawn(move || tx.send(2).unwrap());
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        t.join().unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }
}
