//! Offline stand-in for `crossbeam`.
//!
//! Provides the piece this workspace uses: [`channel`] — multi-producer
//! *multi-consumer* channels with bounded (backpressure-capable) and
//! unbounded flavors. Implemented over `Mutex` + two `Condvar`s rather than
//! the real crate's lock-free segments; at this workspace's request rates
//! the difference is noise, and the semantics (clone-able `Receiver`,
//! `try_send` returning `Full`, disconnect on last-handle drop) match.

pub mod channel;
