//! Offline stand-in for `criterion`.
//!
//! The build environment has no crates.io access, so this crate provides the
//! slice of criterion's API the workspace's benches use: [`Criterion`],
//! [`BenchmarkId`], benchmark groups with `sample_size`, `bench_function`,
//! and `bench_with_input`, plus the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark is warmed up briefly,
//! then timed over `sample_size` samples with an iteration count chosen so a
//! sample takes roughly a millisecond. Median ns/iter is printed to stdout.
//! There is no statistical analysis, plotting, or baseline storage.

use std::time::{Duration, Instant};

/// Re-export for benches that use `criterion::black_box`; the workspace's
/// benches use `std::hint::black_box` directly.
pub use std::hint::black_box;

/// Identifies one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new<S: Into<String>, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Drives one benchmark body.
pub struct Bencher {
    /// Measured samples, as (iterations, elapsed) pairs.
    samples: Vec<(u64, Duration)>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, first calibrating an iteration count so each sample
    /// takes on the order of a millisecond.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: run until ~1ms has elapsed.
        let mut iters_per_sample: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 2;
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push((iters_per_sample, start.elapsed()));
        }
    }

    fn median_ns_per_iter(&self) -> f64 {
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|(iters, d)| d.as_nanos() as f64 / *iters as f64)
            .collect();
        if per_iter.is_empty() {
            return f64::NAN;
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        per_iter[per_iter.len() / 2]
    }
}

fn run_one(id: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<48} (no samples)");
    } else {
        println!("{id:<48} {:>14.1} ns/iter", b.median_ns_per_iter());
    }
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, DEFAULT_SAMPLE_SIZE, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: group_name.to_string(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

const DEFAULT_SAMPLE_SIZE: usize = 20;

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (kept for API parity; printing happens eagerly).
    pub fn finish(self) {}
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_respects_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("f", 7), &7u32, |b, &n| {
            b.iter(|| std::hint::black_box(n * 2));
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("subdex", 42);
        assert_eq!(id.id, "subdex/42");
    }
}
